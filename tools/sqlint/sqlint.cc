#include "sqlint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>

namespace sq::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

/// Collapses every whitespace run to a single space.
std::string CollapseWs(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_ws = true;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_ws) out.push_back(' ');
      in_ws = true;
    } else {
      out.push_back(c);
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> IdentTokens(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    if (IsIdentChar(c)) {
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool ContainsAnyToken(std::string_view s,
                      std::initializer_list<std::string_view> tokens) {
  for (std::string_view t : tokens) {
    if (HasToken(s, t)) return true;
  }
  return false;
}

void Add(std::vector<Finding>* findings, const SourceFile& file, size_t line,
         std::string pass, std::string message) {
  findings->push_back(
      Finding{file.path, line, std::move(pass), std::move(message)});
}

bool InLayer(std::string_view path,
             std::initializer_list<std::string_view> layers) {
  for (std::string_view layer : layers) {
    if (StartsWith(path, layer)) return true;
  }
  return false;
}

bool IsPreprocessor(std::string_view code) {
  const std::string t = Trim(code);
  return !t.empty() && t[0] == '#';
}

}  // namespace

const SourceFile* Tree::Find(std::string_view rel_path) const {
  for (const SourceFile& f : files) {
    if (f.path == rel_path) return &f;
  }
  return nullptr;
}

Tree LoadTree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  Tree tree;
  tree.root = root;

  const fs::path src = root / "src";
  std::error_code ec;
  if (fs::is_directory(src, ec)) {
    for (auto it = fs::recursive_directory_iterator(src, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::string contents;
      if (!ReadFileToString(it->path(), &contents)) continue;
      const std::string rel =
          fs::relative(it->path(), root).generic_string();
      tree.files.push_back(ScanSource(rel, contents));
    }
  }
  // Deterministic finding order regardless of directory iteration order.
  std::sort(tree.files.begin(), tree.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  std::string contents;
  if (ReadFileToString(root / "tests" / "net_test.cc", &contents)) {
    tree.files.push_back(ScanSource("tests/net_test.cc", contents));
  }
  if (ReadFileToString(root / "README.md", &contents)) {
    tree.files.push_back(ScanPlainText("README.md", contents));
  }
  return tree;
}

// ---------------------------------------------------------------------------
// Exemption grammar

namespace {

const std::set<std::string>& KnownExemptionRules() {
  static const std::set<std::string> kRules = {
      "unordered", "wallclock", "rand",        "unranked",
      "unguarded", "discard",   "metric-name",
  };
  return kRules;
}

}  // namespace

void CheckExemptionGrammar(const Tree& tree, std::vector<Finding>* findings) {
  for (const SourceFile& file : tree.files) {
    if (!StartsWith(file.path, "src/")) continue;
    for (size_t i = 0; i < file.lines.size(); ++i) {
      const std::string& comment = file.lines[i].comment;
      if (comment.find("sq-lint") == std::string::npos) continue;
      std::string rule;
      std::string reason;
      if (!ParseExemption(comment, &rule, &reason)) {
        Add(findings, file, i + 1, "exemption",
            "malformed sq-lint marker (expected 'sq-lint: <rule>-ok(reason)')");
        continue;
      }
      const std::string suffix = "-ok";
      if (rule.size() <= suffix.size() ||
          rule.substr(rule.size() - suffix.size()) != suffix) {
        Add(findings, file, i + 1, "exemption",
            "sq-lint rule '" + rule + "' must end in -ok");
        continue;
      }
      const std::string base = rule.substr(0, rule.size() - suffix.size());
      if (KnownExemptionRules().count(base) == 0) {
        Add(findings, file, i + 1, "exemption",
            "unknown sq-lint rule '" + base + "'");
      }
      if (reason.empty()) {
        Add(findings, file, i + 1, "exemption",
            "sq-lint exemption needs a non-empty reason: '" + rule +
                "(<why>)'");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 1: determinism

void PassDeterminism(const Tree& tree, std::vector<Finding>* findings) {
  const std::initializer_list<std::string_view> kLayers = {
      "src/sql/", "src/query/", "src/net/", "src/storage/"};
  for (const SourceFile& file : tree.files) {
    if (!InLayer(file.path, kLayers)) continue;
    for (size_t i = 0; i < file.lines.size(); ++i) {
      const std::string& code = file.lines[i].code;
      if (IsPreprocessor(code)) continue;
      const size_t line = i + 1;
      if (ContainsAnyToken(code, {"unordered_map", "unordered_set"}) &&
          !HasExemption(file, line, "unordered")) {
        Add(findings, file, line, "determinism",
            "unordered container in a result-producing layer: iteration "
            "order can leak into merged/serialized output; sort before "
            "emission or exempt with // sq-lint: unordered-ok(reason)");
      }
      if (ContainsAnyToken(code, {"system_clock", "gettimeofday"}) &&
          !HasExemption(file, line, "wallclock")) {
        Add(findings, file, line, "determinism",
            "wall-clock read in a result-producing layer; thread the "
            "timestamp through the request (QueryOptions / "
            "local_timestamp_micros) or exempt with "
            "// sq-lint: wallclock-ok(reason)");
      }
      if (ContainsAnyToken(code,
                           {"rand", "srand", "random_device", "mt19937",
                            "drand48"}) &&
          !HasExemption(file, line, "rand")) {
        Add(findings, file, line, "determinism",
            "nondeterministic random source in a result-producing layer; "
            "use a seeded sq::Rng owned by the caller or exempt with "
            "// sq-lint: rand-ok(reason)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: wire/serde exhaustiveness

namespace {

/// Enumerators of the first `enum <needle>` block in `file`, with the block's
/// line range [begin, end] (1-based, inclusive).
struct EnumBlock {
  std::vector<std::string> enumerators;
  size_t begin = 0;
  size_t end = 0;
};

std::optional<EnumBlock> ParseEnum(const SourceFile& file,
                                   std::string_view head) {
  EnumBlock block;
  bool in_block = false;
  for (size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    if (!in_block) {
      if (code.find(head) != std::string::npos) {
        in_block = true;
        block.begin = i + 1;
      }
      continue;
    }
    if (code.find("};") != std::string::npos) {
      block.end = i + 1;
      return block;
    }
    // One enumerator per line (the project style): the first identifier of
    // the form k<Upper>... on the line.
    for (const std::string& token : IdentTokens(code)) {
      if (token.size() >= 2 && token[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(token[1])) != 0) {
        block.enumerators.push_back(token);
        break;
      }
    }
  }
  return std::nullopt;
}

/// [begin, end] line range of the function whose signature contains
/// `signature`; the body ends at the first subsequent line that is exactly
/// "}" (column 0, the project's formatting).
std::optional<std::pair<size_t, size_t>> FindFunctionRegion(
    const SourceFile& file, std::string_view signature) {
  for (size_t i = 0; i < file.lines.size(); ++i) {
    if (file.lines[i].code.find(signature) == std::string::npos) continue;
    for (size_t j = i + 1; j < file.lines.size(); ++j) {
      if (Trim(file.lines[j].code) == "}" && file.lines[j].code[0] == '}') {
        return std::make_pair(i + 1, j + 1);
      }
    }
    return std::nullopt;
  }
  return std::nullopt;
}

bool RegionHasToken(const SourceFile& file, std::pair<size_t, size_t> region,
                    std::string_view token, bool needs_string_literal) {
  for (size_t line = region.first; line <= region.second; ++line) {
    const std::string_view code = file.CodeAt(line);
    if (!HasToken(code, token)) continue;
    if (!needs_string_literal || code.find('"') != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

void PassWire(const Tree& tree, std::vector<Finding>* findings) {
  const SourceFile* wire_h = tree.Find("src/net/wire.h");
  const SourceFile* wire_cc = tree.Find("src/net/wire.cc");
  if (wire_h != nullptr && wire_cc != nullptr) {
    const auto msg_types = ParseEnum(*wire_h, "enum class MsgType");
    if (!msg_types.has_value() || msg_types->enumerators.empty()) {
      Add(findings, *wire_h, 1, "wire",
          "could not parse 'enum class MsgType' block");
    } else {
      const auto known = FindFunctionRegion(*wire_cc, "IsKnownMsgType(");
      const auto to_string = FindFunctionRegion(*wire_cc, "MsgTypeToString(");
      if (!known.has_value()) {
        Add(findings, *wire_cc, 1, "wire",
            "could not locate IsKnownMsgType() in wire.cc");
      }
      if (!to_string.has_value()) {
        Add(findings, *wire_cc, 1, "wire",
            "could not locate MsgTypeToString() in wire.cc");
      }

      const SourceFile* net_test = tree.Find("tests/net_test.cc");
      std::pair<size_t, size_t> corpus{0, 0};
      std::pair<size_t, size_t> rpc_metrics{0, 0};
      if (net_test != nullptr) {
        for (size_t i = 0; i < net_test->lines.size(); ++i) {
          const std::string& comment = net_test->lines[i].comment;
          if (comment.find("sqlint-golden-corpus-begin") !=
              std::string::npos) {
            corpus.first = i + 1;
          } else if (comment.find("sqlint-golden-corpus-end") !=
                     std::string::npos) {
            corpus.second = i + 1;
          } else if (comment.find("sqlint-rpc-metrics-begin") !=
                     std::string::npos) {
            rpc_metrics.first = i + 1;
          } else if (comment.find("sqlint-rpc-metrics-end") !=
                     std::string::npos) {
            rpc_metrics.second = i + 1;
          }
        }
        if (corpus.first == 0 || corpus.second == 0) {
          Add(findings, *net_test, 1, "wire",
              "golden-frame corpus markers (sqlint-golden-corpus-begin/end) "
              "missing from tests/net_test.cc");
        }
        if (rpc_metrics.first == 0 || rpc_metrics.second == 0) {
          Add(findings, *net_test, 1, "wire",
              "per-type RPC-metrics coverage markers "
              "(sqlint-rpc-metrics-begin/end) missing from "
              "tests/net_test.cc");
        }
      }

      for (const std::string& e : msg_types->enumerators) {
        if (known.has_value() &&
            !RegionHasToken(*wire_cc, *known, e, false)) {
          Add(findings, *wire_h, msg_types->begin, "wire",
              "MsgType::" + e + " missing from IsKnownMsgType(): frames of "
              "this type will be rejected as corrupt");
        }
        if (to_string.has_value() &&
            !RegionHasToken(*wire_cc, *to_string, e, true)) {
          Add(findings, *wire_h, msg_types->begin, "wire",
              "MsgType::" + e + " has no MsgTypeToString() entry");
        }
        bool used = false;
        const std::string qualified = "MsgType::" + e;
        for (const SourceFile& file : tree.files) {
          if (!StartsWith(file.path, "src/net/") ||
              file.path == "src/net/wire.h" ||
              file.path == "src/net/wire.cc") {
            continue;
          }
          for (const SourceLine& l : file.lines) {
            if (l.code.find(qualified) != std::string::npos) {
              used = true;
              break;
            }
          }
          if (used) break;
        }
        if (!used) {
          Add(findings, *wire_h, msg_types->begin, "wire",
              "MsgType::" + e + " has no encode/decode site outside the "
              "codec (src/net/*.cc never references it)");
        }
        if (net_test != nullptr && corpus.first != 0 && corpus.second != 0) {
          bool in_corpus = false;
          for (size_t line = corpus.first; line <= corpus.second; ++line) {
            if (HasToken(net_test->CodeAt(line), e)) {
              in_corpus = true;
              break;
            }
          }
          if (!in_corpus) {
            Add(findings, *net_test, corpus.first, "wire",
                "MsgType::" + e + " has no golden-frame corpus entry "
                "(wire-format drift would go unnoticed)");
          }
        }
        // Per-type RPC metrics: the name MsgTypeToString() returns is the
        // suffix of the net.client.rpcs.* / net.server.rpcs.* counters, and
        // the coverage test between the rpc-metrics markers must list it —
        // otherwise a new message type ships without per-type telemetry.
        if (net_test != nullptr && to_string.has_value() &&
            rpc_metrics.first != 0 && rpc_metrics.second != 0) {
          std::string wire_name;
          for (size_t line = to_string->first; line <= to_string->second;
               ++line) {
            const std::string_view code = wire_cc->CodeAt(line);
            if (!HasToken(code, e)) continue;
            const size_t open = code.find('"');
            const size_t close = open == std::string_view::npos
                                     ? std::string_view::npos
                                     : code.find('"', open + 1);
            if (open != std::string_view::npos &&
                close != std::string_view::npos) {
              wire_name = std::string(code.substr(open + 1, close - open - 1));
            }
            break;
          }
          if (!wire_name.empty()) {
            const std::string quoted = "\"" + wire_name + "\"";
            bool covered = false;
            for (size_t line = rpc_metrics.first; line <= rpc_metrics.second;
                 ++line) {
              if (net_test->CodeAt(line).find(quoted) !=
                  std::string_view::npos) {
                covered = true;
                break;
              }
            }
            if (!covered) {
              Add(findings, *net_test, rpc_metrics.first, "wire",
                  "MsgType::" + e + " (" + quoted + ") is missing from the "
                  "per-type RPC-metrics coverage test (a new message type "
                  "must register net.client.rpcs.* / net.server.rpcs.* "
                  "counters)");
            }
          }
        }
      }
    }
  }

  // Serde record types of the durable snapshot log: every type needs both an
  // encode site and a decode/dispatch site in the log implementation.
  const SourceFile* log_cc = tree.Find("src/storage/snapshot_log.cc");
  if (log_cc != nullptr) {
    const auto records = ParseEnum(*log_cc, "enum RecordType");
    if (records.has_value()) {
      for (const std::string& e : records->enumerators) {
        size_t references = 0;
        for (size_t i = 0; i < log_cc->lines.size(); ++i) {
          const size_t line = i + 1;
          if (line >= records->begin && line <= records->end) continue;
          if (HasToken(log_cc->lines[i].code, e)) ++references;
        }
        if (references < 2) {
          Add(findings, *log_cc, records->begin, "wire",
              "RecordType " + e + " needs both an encode site and a "
              "decode/dispatch site in snapshot_log.cc (found " +
                  std::to_string(references) + " reference(s))");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3: lock-annotation completeness

namespace {

struct Member {
  std::string stmt;  // collapsed whitespace, trailing ';' stripped
  size_t line = 0;   // first line of the statement
};

struct ClassScope {
  bool is_class = false;
  std::vector<Member> members;
  std::string pending;       // statement accumulator
  size_t pending_line = 0;   // first line of the accumulating statement
  bool after_brace = false;  // just closed a nested brace at member depth
};

/// True if `stmt` (collapsed) declares an sq::Mutex/SharedMutex member;
/// `*has_rank` reports whether the declaration names a lockrank constant.
bool IsMutexMember(const std::string& stmt, bool* has_rank) {
  std::string s = stmt;
  for (std::string_view prefix :
       {"mutable ", "sq::", "mutable sq::"}) {
    if (StartsWith(s, prefix)) s = s.substr(prefix.size());
  }
  if (!StartsWith(s, "Mutex ") && !StartsWith(s, "SharedMutex ")) {
    return false;
  }
  const std::vector<std::string> tokens = IdentTokens(s);
  if (tokens.size() < 2) return false;
  *has_rank = s.find("lockrank::") != std::string::npos;
  return true;
}

/// Strips template argument lists so parentheses inside std::function<...>
/// and friends do not read as function declarators.
std::string StripTemplateArgs(const std::string& s) {
  std::string out;
  int depth = 0;
  for (char c : s) {
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (depth > 0) --depth;
    } else if (depth == 0) {
      out.push_back(c);
    }
  }
  return out;
}

/// Analyzes one member statement of a mutex-holding class; returns the
/// member name if the field needs an SQ_GUARDED_BY (or exemption).
std::optional<std::string> UnguardedFieldName(const std::string& stmt) {
  std::string s = stmt;
  // Members that carry a guard annotation are what the pass wants.
  if (s.find("SQ_GUARDED_BY") != std::string::npos ||
      s.find("SQ_PT_GUARDED_BY") != std::string::npos) {
    return std::nullopt;
  }
  // Skip non-field statements and fields that synchronize themselves.
  static const std::vector<std::string> kSkipLeading = {
      "using",    "typedef", "friend",  "static", "constexpr", "enum",
      "class",    "struct",  "union",   "template", "explicit", "virtual",
      "operator", "inline",  "public",  "private",  "protected",
  };
  const std::vector<std::string> raw_tokens = IdentTokens(s);
  if (raw_tokens.empty()) return std::nullopt;
  for (const std::string& skip : kSkipLeading) {
    if (raw_tokens.front() == skip) return std::nullopt;
  }
  if (ContainsAnyToken(s, {"Mutex", "SharedMutex", "CondVar", "atomic",
                           "Counter", "Gauge", "Histogram", "const",
                           "constexpr"})) {
    // Mutexes/condvars are the synchronization itself; atomics synchronize
    // themselves; Counter/Gauge/Histogram handles are internally
    // synchronized; const members are immutable after construction.
    return std::nullopt;
  }
  // Cut initializers and array extents, then reject function declarators.
  for (char cut : {'=', '{', '['}) {
    const size_t pos = s.find(cut);
    if (pos != std::string::npos) s = s.substr(0, pos);
  }
  s = StripTemplateArgs(s);
  if (s.find('(') != std::string::npos) return std::nullopt;
  const std::vector<std::string> tokens = IdentTokens(s);
  if (tokens.size() < 2) return std::nullopt;
  return tokens.back();
}

void AnalyzeClassMembers(const SourceFile& file, const ClassScope& scope,
                         std::vector<Finding>* findings) {
  bool has_mutex = false;
  for (const Member& m : scope.members) {
    bool has_rank = false;
    if (IsMutexMember(m.stmt, &has_rank)) {
      has_mutex = true;
      if (!has_rank && !HasExemption(file, m.line, "unranked")) {
        Add(findings, file, m.line, "locks",
            "mutex member without a lockrank:: constant; rank it or exempt "
            "with // sq-lint: unranked-ok(reason)");
      }
    }
  }
  if (!has_mutex) return;
  for (const Member& m : scope.members) {
    bool ignored = false;
    if (IsMutexMember(m.stmt, &ignored)) continue;
    const std::optional<std::string> field = UnguardedFieldName(m.stmt);
    if (!field.has_value()) continue;
    if (HasExemption(file, m.line, "unguarded")) continue;
    Add(findings, file, m.line, "locks",
        "field '" + *field + "' of a mutex-holding class is neither "
        "SQ_GUARDED_BY nor exempted "
        "(// sq-lint: unguarded-ok(reason))");
  }
}

ClassScope* DeepestClass(std::vector<ClassScope>* stack) {
  for (auto it = stack->rbegin(); it != stack->rend(); ++it) {
    if (it->is_class) return &*it;
  }
  return nullptr;
}

void AnalyzeFileClasses(const SourceFile& file,
                        std::vector<Finding>* findings) {
  std::vector<ClassScope> stack;
  bool pending_class = false;  // saw class/struct/union, '{' not yet seen
  bool pending_enum = false;   // saw enum (so a following 'class' is scoped)
  char prev_sig = '\0';        // last non-ws char before the current token

  for (size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& raw = file.lines[i].code;
    if (IsPreprocessor(raw)) continue;
    std::string ident;
    for (size_t p = 0; p <= raw.size(); ++p) {
      const char c = p < raw.size() ? raw[p] : '\n';
      if (IsIdentChar(c)) {
        ident.push_back(c);
      } else if (!ident.empty()) {
        if (ident == "enum") pending_enum = true;
        if ((ident == "class" || ident == "struct" || ident == "union") &&
            !pending_enum && prev_sig != '<' && prev_sig != ',') {
          // prev_sig guards against `template <class T, class U>`.
          pending_class = true;
        }
        prev_sig = ident.back();
        ident.clear();
      }

      // Characters are routed to the deepest class on the stack; ';' only
      // terminates a member statement at that class's own depth (inside a
      // nested function body or brace-init it is ordinary content).
      ClassScope* cls = DeepestClass(&stack);
      const bool at_class_depth = !stack.empty() && stack.back().is_class;
      auto append_to_cls = [&](char ch) {
        if (cls == nullptr) return;
        if (cls->pending_line == 0 &&
            std::isspace(static_cast<unsigned char>(ch)) == 0) {
          cls->pending_line = i + 1;
        }
        cls->pending.push_back(ch);
      };

      if (IsIdentChar(c)) {
        append_to_cls(c);
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) == 0 && c != '{' &&
          c != '}') {
        prev_sig = c;
      }

      if (c == '{') {
        // The brace belongs to the member statement (brace-init, nested
        // class) as far as the enclosing class is concerned.
        append_to_cls(c);
        ClassScope scope;
        scope.is_class = pending_class;
        stack.push_back(scope);
        pending_class = false;
        pending_enum = false;
        continue;
      }
      if (c == '}') {
        if (!stack.empty()) {
          ClassScope closed = std::move(stack.back());
          stack.pop_back();
          if (closed.is_class) AnalyzeClassMembers(file, closed, findings);
          cls = DeepestClass(&stack);
          if (cls != nullptr) {
            cls->pending.push_back(c);
            // Only the scope directly under a class decides inline-body vs
            // brace-init (the after-brace ';' peek below).
            if (!stack.empty() && stack.back().is_class) {
              stack.back().after_brace = true;
            }
          }
        }
        continue;
      }
      if (cls != nullptr && at_class_depth && cls->after_brace) {
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
          continue;  // keep waiting for the deciding character
        }
        if (c == ';') {
          cls->after_brace = false;  // brace-init / nested type: keep stmt
        } else {
          // A nested brace not followed by ';' was an inline function
          // body: discard it and start a fresh statement here.
          cls->pending.clear();
          cls->pending_line = i + 1;
          cls->after_brace = false;
        }
      }
      if (cls != nullptr) {
        if (c == ';' && at_class_depth) {
          std::string stmt = CollapseWs(cls->pending);
          // Strip access labels glued to the front of the statement.
          for (std::string_view label :
               {"public :", "private :", "protected :", "public:",
                "private:", "protected:"}) {
            while (StartsWith(stmt, label)) {
              stmt = Trim(stmt.substr(label.size()));
            }
          }
          if (!stmt.empty()) {
            cls->members.push_back(Member{stmt, cls->pending_line});
          }
          cls->pending.clear();
          cls->pending_line = 0;
        } else if (c != '\n') {
          append_to_cls(c);
        }
      }
      if (c == ';') {
        pending_class = false;
        pending_enum = false;
      }
    }
    // Newline separates tokens across lines in the accumulator.
    ClassScope* cls = DeepestClass(&stack);
    if (cls != nullptr && !cls->pending.empty()) {
      cls->pending.push_back(' ');
    }
  }
}

void CheckRankTable(const Tree& tree, std::vector<Finding>* findings) {
  const SourceFile* mutex_h = tree.Find("src/common/mutex.h");
  const SourceFile* readme = tree.Find("README.md");
  if (mutex_h == nullptr || readme == nullptr) return;

  std::map<std::string, long> ranks;
  std::map<std::string, size_t> rank_lines;
  for (size_t i = 0; i < mutex_h->lines.size(); ++i) {
    const std::string& code = mutex_h->lines[i].code;
    const size_t pos = code.find("inline constexpr int k");
    if (pos == std::string::npos) continue;
    const size_t name_begin = code.find('k', pos);
    size_t name_end = name_begin;
    while (name_end < code.size() && IsIdentChar(code[name_end])) ++name_end;
    const std::string name = code.substr(name_begin, name_end - name_begin);
    const size_t eq = code.find('=', name_end);
    if (eq == std::string::npos) continue;
    ranks[name] = std::strtol(code.c_str() + eq + 1, nullptr, 10);
    rank_lines[name] = i + 1;
  }
  if (ranks.empty()) return;

  // The README rank table: one `| <rank> | `kConstant` | ... |` row per
  // constant. Collect the table rows and the constants they mention.
  std::map<std::string, std::pair<long, size_t>> readme_rows;
  for (size_t i = 0; i < readme->lines.size(); ++i) {
    const std::string& line = readme->lines[i].code;
    if (line.empty() || line[0] != '|') continue;
    if (line.find("`k") == std::string::npos) continue;
    long value = 0;
    bool has_value = false;
    for (size_t p = 1; p < line.size(); ++p) {
      if (std::isdigit(static_cast<unsigned char>(line[p])) != 0) {
        value = std::strtol(line.c_str() + p, nullptr, 10);
        has_value = true;
        break;
      }
      if (line[p] != ' ' && line[p] != '|') break;
    }
    if (!has_value) continue;
    for (const std::string& token : IdentTokens(line)) {
      if (token.size() >= 2 && token[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(token[1])) != 0) {
        readme_rows[token] = {value, i + 1};
      }
    }
  }
  if (readme_rows.empty()) return;  // no rank table in this README

  for (const auto& [name, value] : ranks) {
    if (name == "kUnranked") continue;
    const auto it = readme_rows.find(name);
    if (it == readme_rows.end()) {
      Add(findings, *mutex_h, rank_lines[name], "locks",
          "lockrank::" + name + " is missing from the README rank table");
    } else if (it->second.first != value) {
      Add(findings, *readme, it->second.second, "locks",
          "README rank table lists " + name + " as " +
              std::to_string(it->second.first) + " but mutex.h says " +
              std::to_string(value));
    }
  }
  for (const auto& [name, row] : readme_rows) {
    if (ranks.count(name) == 0) {
      Add(findings, *readme, row.second, "locks",
          "README rank table mentions " + name +
              " which does not exist in common/mutex.h");
    }
  }
}

}  // namespace

void PassLocks(const Tree& tree, std::vector<Finding>* findings) {
  for (const SourceFile& file : tree.files) {
    if (!StartsWith(file.path, "src/")) continue;
    // The lock wrappers themselves: raw std primitives live here by design.
    if (file.path == "src/common/mutex.h" ||
        file.path == "src/common/mutex.cc" ||
        file.path == "src/common/thread_annotations.h") {
      continue;
    }
    AnalyzeFileClasses(file, findings);
  }
  CheckRankTable(tree, findings);
}

// ---------------------------------------------------------------------------
// Pass 4: status discipline

void PassStatus(const Tree& tree, std::vector<Finding>* findings) {
  for (const SourceFile& file : tree.files) {
    if (!StartsWith(file.path, "src/")) continue;
    // First line of every `(void)<call>` discard statement in the file.
    std::vector<size_t> discard_lines;
    for (size_t i = 0; i < file.lines.size(); ++i) {
      const std::string& code = file.lines[i].code;
      size_t pos = 0;
      while ((pos = code.find("(void)", pos)) != std::string::npos) {
        pos += 6;
        // Join lines until the statement's ';' (bounded; a cast used in a
        // longer expression is treated as a discard too).
        std::string expr = code.substr(pos);
        size_t j = i;
        while (expr.find(';') == std::string::npos &&
               j + 1 < file.lines.size() && j < i + 10) {
          ++j;
          expr += ' ';
          expr += file.lines[j].code;
        }
        const size_t semi = expr.find(';');
        if (semi != std::string::npos) expr = expr.substr(0, semi);
        // Strip macro-continuation backslashes before classifying.
        std::string cleaned;
        for (char c : expr) {
          if (c != '\\') cleaned.push_back(c);
        }
        const std::string t = Trim(cleaned);
        const bool zero_literal = !t.empty() && t[0] == '0';
        bool bare_identifier = !t.empty() && !zero_literal;
        for (char c : t) {
          if (!IsIdentChar(c)) {
            bare_identifier = false;
            break;
          }
        }
        if (!t.empty() && !zero_literal && !bare_identifier) {
          discard_lines.push_back(i + 1);
        }
      }
    }
    // A discard needs a rationale comment on its line or the line above; a
    // contiguous block of discards shares the comment above the block.
    std::map<size_t, bool> justified;
    for (size_t line : discard_lines) {
      bool ok = !Trim(file.CommentAt(line)).empty() ||
                !Trim(file.CommentAt(line - 1)).empty();
      if (!ok && justified.count(line - 1) != 0) ok = justified[line - 1];
      justified[line] = ok;
      if (!ok) {
        Add(findings, file, line, "status",
            "(void)-discarded call without a rationale comment (say why "
            "dropping this Status/Result/value is safe)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 5: metric-name registry

namespace {

struct MetricEntry {
  std::string constant;
  std::string value;
  std::string kind;
  std::string description;
  size_t line = 0;
};

std::vector<MetricEntry> ParseMetricRegistry(const SourceFile& registry,
                                             std::vector<Finding>* findings) {
  std::vector<MetricEntry> entries;
  for (size_t i = 0; i < registry.lines.size(); ++i) {
    const std::string& code = registry.lines[i].code;
    const size_t decl = code.find("inline constexpr char k");
    if (decl == std::string::npos) continue;
    MetricEntry entry;
    entry.line = i + 1;
    const size_t name_begin = code.find("char k", decl) + 5;
    size_t name_end = name_begin;
    while (name_end < code.size() && IsIdentChar(code[name_end])) ++name_end;
    entry.constant = code.substr(name_begin, name_end - name_begin);
    // The value literal may sit on this or the following line.
    for (size_t j = i; j < std::min(i + 2, registry.lines.size()); ++j) {
      const std::string& value_code = registry.lines[j].code;
      const size_t open = value_code.find('"');
      if (open == std::string::npos) continue;
      const size_t close = value_code.find('"', open + 1);
      if (close == std::string::npos) continue;
      entry.value = value_code.substr(open + 1, close - open - 1);
      break;
    }
    // Doc comment: the /// block directly above, whose first word is the
    // metric kind.
    std::string doc;
    for (size_t j = i; j > 0; --j) {
      const std::string& comment = registry.lines[j - 1].comment;
      if (Trim(registry.lines[j - 1].code).empty() && !Trim(comment).empty()) {
        // `/// kind — desc` leaves the third slash in the comment channel;
        // strip it per line so continuations join cleanly.
        std::string piece = Trim(comment);
        while (!piece.empty() &&
               (piece[0] == '/' || piece[0] == '<' || piece[0] == ' ')) {
          piece = piece.substr(1);
        }
        doc = piece + (doc.empty() ? "" : " " + doc);
      } else {
        break;
      }
    }
    const size_t dash = doc.find(" — ");
    if (dash != std::string::npos) {
      entry.kind = Trim(doc.substr(0, dash));
      entry.description = Trim(doc.substr(dash + std::string(" — ").size()));
    }
    if (findings != nullptr) {
      if (entry.value.empty()) {
        Add(findings, registry, entry.line, "metrics",
            entry.constant + " has no string value");
      }
      if (entry.kind != "counter" && entry.kind != "gauge" &&
          entry.kind != "histogram") {
        Add(findings, registry, entry.line, "metrics",
            entry.constant + " needs a doc comment of the form "
            "'/// <counter|gauge|histogram> — <description>'");
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

void PassMetrics(const Tree& tree, std::vector<Finding>* findings) {
  const SourceFile* registry = tree.Find("src/common/metric_names.h");
  std::vector<MetricEntry> entries;
  if (registry != nullptr) {
    entries = ParseMetricRegistry(*registry, findings);
    std::map<std::string, size_t> by_value;
    for (const MetricEntry& e : entries) {
      if (!e.value.empty()) {
        const auto [it, inserted] = by_value.emplace(e.value, e.line);
        if (!inserted) {
          Add(findings, *registry, e.line, "metrics",
              "duplicate metric name \"" + e.value + "\" (also line " +
                  std::to_string(it->second) + ")");
        }
        bool well_formed = e.value.find('.') != std::string::npos;
        for (char c : e.value) {
          if (std::islower(static_cast<unsigned char>(c)) == 0 &&
              std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
              c != '_') {
            well_formed = false;
          }
        }
        if (!well_formed) {
          Add(findings, *registry, e.line, "metrics",
              "metric name \"" + e.value +
                  "\" is not a dotted lowercase path");
        }
      }
      // Every registered name must be used somewhere, or the registry rots.
      bool used = false;
      for (const SourceFile& file : tree.files) {
        if (!StartsWith(file.path, "src/") ||
            file.path == "src/common/metric_names.h") {
          continue;
        }
        for (const SourceLine& l : file.lines) {
          if (HasToken(l.code, e.constant)) {
            used = true;
            break;
          }
        }
        if (used) break;
      }
      if (!used) {
        Add(findings, *registry, e.line, "metrics",
            e.constant + " is registered but never used in src/");
      }
      // The README metrics table is regenerated from this registry
      // (sqlint --dump-metrics); a missing row means stale docs.
      const SourceFile* readme = tree.Find("README.md");
      if (readme != nullptr && !e.value.empty()) {
        bool documented = false;
        for (const SourceLine& l : readme->lines) {
          if (l.code.find(e.value) != std::string::npos) {
            documented = true;
            break;
          }
        }
        if (!documented) {
          Add(findings, *registry, e.line, "metrics",
              "\"" + e.value + "\" is missing from the README metrics "
              "table (regenerate with sqlint --dump-metrics)");
        }
      }
    }
  }

  // Call sites: metric lookups must name a registry constant.
  for (const SourceFile& file : tree.files) {
    if (!StartsWith(file.path, "src/")) continue;
    if (file.path == "src/common/metric_names.h" ||
        file.path == "src/common/metrics.h" ||
        file.path == "src/common/metrics.cc") {
      continue;
    }
    for (size_t i = 0; i < file.lines.size(); ++i) {
      const std::string& code = file.lines[i].code;
      for (std::string_view getter :
           {"GetCounter(", "GetGauge(", "GetHistogram("}) {
        size_t pos = 0;
        while ((pos = code.find(getter, pos)) != std::string::npos) {
          const bool is_call =
              pos > 0 && (code[pos - 1] == '.' || code[pos - 1] == '>');
          const size_t arg_begin = pos + getter.size();
          pos = arg_begin;
          if (!is_call) continue;
          // The argument may start on the next line.
          std::string arg = code.substr(arg_begin);
          if (Trim(arg).empty() && i + 1 < file.lines.size()) {
            arg = file.lines[i + 1].code;
          }
          const std::string t = Trim(arg);
          const size_t line = i + 1;
          if (!t.empty() && t[0] == '"') {
            if (!HasExemption(file, line, "metric-name")) {
              Add(findings, file, line, "metrics",
                  "inline metric-name literal; add it to "
                  "common/metric_names.h and use the constant");
            }
          } else if (t.find("metric_names::") == std::string::npos) {
            if (!HasExemption(file, line, "metric-name")) {
              Add(findings, file, line, "metrics",
                  "metric lookup does not name a metric_names:: constant");
            }
          }
        }
      }
    }
  }
}

std::string DumpMetricsTable(const Tree& tree) {
  const SourceFile* registry = tree.Find("src/common/metric_names.h");
  std::ostringstream out;
  out << "| Metric | Kind | Meaning |\n|---|---|---|\n";
  if (registry == nullptr) return out.str();
  for (const MetricEntry& e : ParseMetricRegistry(*registry, nullptr)) {
    out << "| `" << e.value << "` | " << e.kind << " | " << e.description
        << " |\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Driver

const std::set<std::string>& AllPassNames() {
  static const std::set<std::string> kNames = {
      "determinism", "wire", "locks", "status", "metrics"};
  return kNames;
}

int RunSqlint(const std::filesystem::path& root,
              const std::set<std::string>& passes, std::ostream& out) {
  const Tree tree = LoadTree(root);
  if (tree.files.empty()) {
    out << "sqlint: no sources found under " << root.string()
        << "/src (wrong --root?)\n";
    return 2;
  }
  for (const std::string& pass : passes) {
    if (AllPassNames().count(pass) == 0) {
      out << "sqlint: unknown pass '" << pass << "'\n";
      return 2;
    }
  }
  const auto enabled = [&passes](const char* name) {
    return passes.empty() || passes.count(name) != 0;
  };

  std::vector<Finding> findings;
  CheckExemptionGrammar(tree, &findings);
  if (enabled("determinism")) PassDeterminism(tree, &findings);
  if (enabled("wire")) PassWire(tree, &findings);
  if (enabled("locks")) PassLocks(tree, &findings);
  if (enabled("status")) PassStatus(tree, &findings);
  if (enabled("metrics")) PassMetrics(tree, &findings);

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.pass << "] " << f.message
        << "\n";
  }
  if (findings.empty()) {
    out << "sqlint: clean (" << tree.files.size() << " files)\n";
    return 0;
  }
  out << "sqlint: " << findings.size() << " finding(s)\n";
  return 1;
}

}  // namespace sq::lint
