#ifndef SQUERY_TOOLS_SQLINT_SQLINT_H_
#define SQUERY_TOOLS_SQLINT_SQLINT_H_

#include <filesystem>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "source.h"

// sq-lint: the project-invariant static-analysis suite (README "Static
// analysis & concurrency hygiene"). Five passes over a lexical scan of the
// tree — no libclang, so it runs in every CI job and as a tier-1 ctest:
//
//   determinism   unordered-container iteration / wall-clock / rand inside
//                 result-producing layers (src/sql, src/query, src/net,
//                 src/storage) — the bit-identical merge invariant
//   wire          every net::MsgType and storage RecordType value must have
//                 an encode site, a decode case, a MsgTypeToString entry, a
//                 golden-frame corpus reference and a per-type RPC-metrics
//                 coverage entry in tests/net_test.cc
//   locks         every sq::Mutex/SharedMutex member carries a lockrank,
//                 every sibling mutable field is SQ_GUARDED_BY or exempted,
//                 and the lockrank table matches the README rank table
//   status        `(void)`-discarded calls must carry a rationale comment
//   metrics       metric names come from common/metric_names.h, every
//                 registry entry is used and documented in the README
//
// A finding is suppressed by an exemption comment on the same line or the
// line above:  // sq-lint: <rule>-ok(<non-empty reason>)
// with <rule> one of: unordered, wallclock, rand, unranked, unguarded,
// discard, metric-name.

namespace sq::lint {

struct Finding {
  std::string file;
  size_t line = 0;
  std::string pass;
  std::string message;
};

/// The scanned tree: every .h/.cc under src/, plus tests/net_test.cc (golden
/// corpus cross-check) and README.md (rank + metrics table cross-checks).
struct Tree {
  std::filesystem::path root;
  std::vector<SourceFile> files;

  const SourceFile* Find(std::string_view rel_path) const;
};

Tree LoadTree(const std::filesystem::path& root);

// Individual passes (exposed for the fixture tests). Each appends findings.
void CheckExemptionGrammar(const Tree& tree, std::vector<Finding>* findings);
void PassDeterminism(const Tree& tree, std::vector<Finding>* findings);
void PassWire(const Tree& tree, std::vector<Finding>* findings);
void PassLocks(const Tree& tree, std::vector<Finding>* findings);
void PassStatus(const Tree& tree, std::vector<Finding>* findings);
void PassMetrics(const Tree& tree, std::vector<Finding>* findings);

/// Valid pass names for RunSqlint's filter.
const std::set<std::string>& AllPassNames();

/// Runs the selected passes (empty = all) plus the exemption-grammar check,
/// prints findings to `out`, returns the process exit code (0 = clean,
/// 1 = findings, 2 = usage/setup error).
int RunSqlint(const std::filesystem::path& root,
              const std::set<std::string>& passes, std::ostream& out);

/// Renders the metric registry as the README's markdown table
/// (`sqlint --dump-metrics`).
std::string DumpMetricsTable(const Tree& tree);

}  // namespace sq::lint

#endif  // SQUERY_TOOLS_SQLINT_SQLINT_H_
