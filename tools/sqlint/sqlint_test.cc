#include "sqlint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "source.h"

namespace sq::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Fixture helpers: build a Tree in memory from (path, contents) pairs so each
// pass can be exercised against small positive/exempted snippets.

Tree MakeTree(
    const std::vector<std::pair<std::string, std::string>>& files) {
  Tree tree;
  for (const auto& [path, contents] : files) {
    if (path == "README.md") {
      tree.files.push_back(ScanPlainText(path, contents));
    } else {
      tree.files.push_back(ScanSource(path, contents));
    }
  }
  return tree;
}

std::vector<Finding> RunPass(void (*pass)(const Tree&,
                                          std::vector<Finding>*),
                             const Tree& tree) {
  std::vector<Finding> findings;
  pass(tree, &findings);
  return findings;
}

// ---------------------------------------------------------------------------
// Scanner

TEST(Scanner, SplitsCodeAndComments) {
  const SourceFile f = ScanSource("src/a.cc",
                                  "int x = 1;  // trailing note\n"
                                  "/* lead */ int y = 2;\n"
                                  "/* span\n"
                                  "   ning */ int z = 3;\n"
                                  "const char* s = \"// not a comment\";\n");
  ASSERT_EQ(f.lines.size(), 5u);
  EXPECT_EQ(f.lines[0].code, "int x = 1;  ");
  EXPECT_EQ(f.lines[0].comment, " trailing note");
  EXPECT_EQ(f.lines[1].code, " int y = 2;");
  EXPECT_EQ(f.lines[1].comment, " lead ");
  EXPECT_EQ(f.lines[2].comment, " span");
  EXPECT_EQ(f.lines[3].code, " int z = 3;");
  EXPECT_EQ(f.lines[4].code, "const char* s = \"// not a comment\";");
  EXPECT_TRUE(f.lines[4].comment.empty());
}

TEST(Scanner, EscapedQuotesStayInStringState) {
  const SourceFile f =
      ScanSource("src/a.cc", "auto s = \"a \\\" b // c\"; // real\n");
  ASSERT_EQ(f.lines.size(), 1u);
  EXPECT_EQ(f.lines[0].comment, " real");
}

TEST(Scanner, HasTokenRespectsIdentifierBoundaries) {
  EXPECT_TRUE(HasToken("std::unordered_map<int, int> m;", "unordered_map"));
  EXPECT_FALSE(HasToken("my_unordered_map_wrapper m;", "unordered_map"));
  EXPECT_TRUE(HasToken("rand()", "rand"));
  EXPECT_FALSE(HasToken("operand()", "rand"));
}

TEST(Exemptions, ParseAndMatch) {
  std::string rule;
  std::string reason;
  ASSERT_TRUE(
      ParseExemption(" sq-lint: unordered-ok(lookup only)", &rule, &reason));
  EXPECT_EQ(rule, "unordered-ok");
  EXPECT_EQ(reason, "lookup only");

  ASSERT_TRUE(ParseExemption(" sq-lint: unordered-ok()", &rule, &reason));
  EXPECT_TRUE(reason.empty());  // empty reason = malformed

  const SourceFile f = ScanSource(
      "src/a.cc",
      "// sq-lint: unordered-ok(probe order follows left input)\n"
      "std::unordered_map<K, V> index;\n"
      "std::unordered_map<K, V> other;  // sq-lint: unordered-ok(same line)\n"
      "std::unordered_map<K, V> naked;\n");
  EXPECT_TRUE(HasExemption(f, 2, "unordered"));
  EXPECT_TRUE(HasExemption(f, 3, "unordered"));
  EXPECT_FALSE(HasExemption(f, 4, "unordered"));
  EXPECT_FALSE(HasExemption(f, 2, "wallclock"));  // rule must match
}

TEST(Exemptions, GrammarCheckFlagsUnknownRuleAndMissingReason) {
  const Tree tree = MakeTree({{"src/a.cc",
                               "int a;  // sq-lint: unordered-ok()\n"
                               "int b;  // sq-lint: bogus-ok(why)\n"
                               "int c;  // sq-lint: unordered-ok(fine)\n"}});
  std::vector<Finding> findings;
  CheckExemptionGrammar(tree, &findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
}

// ---------------------------------------------------------------------------
// Pass 1: determinism

TEST(Determinism, FlagsUnorderedInResultLayersOnly) {
  const Tree tree = MakeTree(
      {{"src/sql/x.cc", "std::unordered_map<int, int> m;\n"},
       {"src/common/y.cc", "std::unordered_map<int, int> fine;\n"}});
  const auto findings = RunPass(PassDeterminism, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/sql/x.cc");
  EXPECT_EQ(findings[0].pass, "determinism");
}

TEST(Determinism, ExemptionSuppresses) {
  const Tree tree = MakeTree(
      {{"src/query/x.cc",
        "// sq-lint: unordered-ok(lookup only, never iterated)\n"
        "std::unordered_map<int, int> m;\n"}});
  EXPECT_TRUE(RunPass(PassDeterminism, tree).empty());
}

TEST(Determinism, FlagsWallClockAndRand) {
  const Tree tree = MakeTree(
      {{"src/net/x.cc",
        "auto t = std::chrono::system_clock::now();\n"
        "int r = rand();\n"
        "std::mt19937 gen(seed);  // sq-lint: rand-ok(seed from request)\n"}});
  const auto findings = RunPass(PassDeterminism, tree);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(Determinism, StringsAndCommentsDoNotTrip) {
  const Tree tree = MakeTree(
      {{"src/storage/x.cc",
        "// unordered_map would be wrong here\n"
        "const char* kDoc = \"unordered_map rand system_clock\";\n"}});
  // The doc-string line mentions the tokens inside a string literal; the
  // lexical scan keeps literals in the code channel, so an exemption is the
  // documented escape hatch for this rare shape.
  EXPECT_EQ(RunPass(PassDeterminism, tree).size(), 3u);
}

// ---------------------------------------------------------------------------
// Pass 2: wire exhaustiveness

const char kWireH[] =
    "enum class MsgType : uint8_t {\n"
    "  kHello = 1,\n"
    "  kError = 2,\n"
    "};\n";

const char kWireCcComplete[] =
    "bool IsKnownMsgType(MsgType t) {\n"
    "  switch (t) {\n"
    "    case MsgType::kHello:\n"
    "    case MsgType::kError:\n"
    "      return true;\n"
    "  }\n"
    "  return false;\n"
    "}\n"
    "const char* MsgTypeToString(MsgType t) {\n"
    "  switch (t) {\n"
    "    case MsgType::kHello: return \"Hello\";\n"
    "    case MsgType::kError: return \"Error\";\n"
    "  }\n"
    "  return \"?\";\n"
    "}\n";

const char kNetUser[] =
    "void Send() { Encode(MsgType::kHello); Encode(MsgType::kError); }\n";

const char kNetTestComplete[] =
    "// sqlint-golden-corpus-begin\n"
    "GoldenFrame(MsgType::kHello, \"...\");\n"
    "GoldenFrame(MsgType::kError, \"...\");\n"
    "// sqlint-golden-corpus-end\n"
    "// sqlint-rpc-metrics-begin\n"
    "ExpectPerTypeRpcCounters(\"Hello\");\n"
    "ExpectPerTypeRpcCounters(\"Error\");\n"
    "// sqlint-rpc-metrics-end\n";

TEST(Wire, CompleteFixtureIsClean) {
  const Tree tree = MakeTree({{"src/net/wire.h", kWireH},
                              {"src/net/wire.cc", kWireCcComplete},
                              {"src/net/client.cc", kNetUser},
                              {"tests/net_test.cc", kNetTestComplete}});
  EXPECT_TRUE(RunPass(PassWire, tree).empty());
}

TEST(Wire, MissingToStringEntryIsFlagged) {
  const char kWireCcNoErrorString[] =
      "bool IsKnownMsgType(MsgType t) {\n"
      "  switch (t) {\n"
      "    case MsgType::kHello:\n"
      "    case MsgType::kError:\n"
      "      return true;\n"
      "  }\n"
      "  return false;\n"
      "}\n"
      "const char* MsgTypeToString(MsgType t) {\n"
      "  switch (t) {\n"
      "    case MsgType::kHello: return \"Hello\";\n"
      "  }\n"
      "  return \"?\";\n"
      "}\n";
  const Tree tree = MakeTree({{"src/net/wire.h", kWireH},
                              {"src/net/wire.cc", kWireCcNoErrorString},
                              {"src/net/client.cc", kNetUser},
                              {"tests/net_test.cc", kNetTestComplete}});
  const auto findings = RunPass(PassWire, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kError"), std::string::npos);
  EXPECT_NE(findings[0].message.find("MsgTypeToString"), std::string::npos);
}

TEST(Wire, MissingGoldenCorpusEntryIsFlagged) {
  const char kNetTestMissingError[] =
      "// sqlint-golden-corpus-begin\n"
      "GoldenFrame(MsgType::kHello, \"...\");\n"
      "// sqlint-golden-corpus-end\n"
      "// sqlint-rpc-metrics-begin\n"
      "ExpectPerTypeRpcCounters(\"Hello\");\n"
      "ExpectPerTypeRpcCounters(\"Error\");\n"
      "// sqlint-rpc-metrics-end\n";
  const Tree tree = MakeTree({{"src/net/wire.h", kWireH},
                              {"src/net/wire.cc", kWireCcComplete},
                              {"src/net/client.cc", kNetUser},
                              {"tests/net_test.cc", kNetTestMissingError}});
  const auto findings = RunPass(PassWire, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("golden-frame"), std::string::npos);
}

TEST(Wire, MissingRpcMetricsCoverageIsFlagged) {
  // kError is in the golden corpus but absent from the rpc-metrics coverage
  // block: the new-message-type-without-telemetry failure mode.
  const char kNetTestNoErrorMetrics[] =
      "// sqlint-golden-corpus-begin\n"
      "GoldenFrame(MsgType::kHello, \"...\");\n"
      "GoldenFrame(MsgType::kError, \"...\");\n"
      "// sqlint-golden-corpus-end\n"
      "// sqlint-rpc-metrics-begin\n"
      "ExpectPerTypeRpcCounters(\"Hello\");\n"
      "// sqlint-rpc-metrics-end\n";
  const Tree tree = MakeTree({{"src/net/wire.h", kWireH},
                              {"src/net/wire.cc", kWireCcComplete},
                              {"src/net/client.cc", kNetUser},
                              {"tests/net_test.cc", kNetTestNoErrorMetrics}});
  const auto findings = RunPass(PassWire, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kError"), std::string::npos);
  EXPECT_NE(findings[0].message.find("RPC-metrics"), std::string::npos);
}

TEST(Wire, MissingRpcMetricsMarkersAreFlagged) {
  const char kNetTestNoMarkers[] =
      "// sqlint-golden-corpus-begin\n"
      "GoldenFrame(MsgType::kHello, \"...\");\n"
      "GoldenFrame(MsgType::kError, \"...\");\n"
      "// sqlint-golden-corpus-end\n";
  const Tree tree = MakeTree({{"src/net/wire.h", kWireH},
                              {"src/net/wire.cc", kWireCcComplete},
                              {"src/net/client.cc", kNetUser},
                              {"tests/net_test.cc", kNetTestNoMarkers}});
  const auto findings = RunPass(PassWire, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("sqlint-rpc-metrics-begin"),
            std::string::npos);
}

TEST(Wire, UnreferencedMsgTypeIsFlagged) {
  const Tree tree = MakeTree(
      {{"src/net/wire.h", kWireH},
       {"src/net/wire.cc", kWireCcComplete},
       {"src/net/client.cc",
        "void Send() { Encode(MsgType::kHello); }\n"},  // never kError
       {"tests/net_test.cc", kNetTestComplete}});
  const auto findings = RunPass(PassWire, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("no encode/decode site"),
            std::string::npos);
}

TEST(Wire, RecordTypeNeedsEncodeAndDecodeSites) {
  const Tree tree = MakeTree(
      {{"src/storage/snapshot_log.cc",
        "enum RecordType : uint8_t {\n"
        "  kDeltaRecord = 1,\n"
        "  kCommitRecord = 2,\n"
        "};\n"
        "void Write() { Put(kDeltaRecord); Put(kCommitRecord); }\n"
        "void Read() { if (t == kDeltaRecord) {} }\n"}});
  const auto findings = RunPass(PassWire, tree);
  ASSERT_EQ(findings.size(), 1u);  // kCommitRecord has only the encode site
  EXPECT_NE(findings[0].message.find("kCommitRecord"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass 3: lock discipline

TEST(Locks, RankedMutexWithGuardedFieldsIsClean) {
  const Tree tree = MakeTree(
      {{"src/state/x.h",
        "class Registry {\n"
        " public:\n"
        "  void Add();\n"
        "  int Size() const { return 0; }\n"
        " private:\n"
        "  mutable sq::Mutex mu_{lockrank::kStateRegistry, \"registry\"};\n"
        "  std::vector<int> items_ SQ_GUARDED_BY(mu_);\n"
        "  std::atomic<int> hits_{0};\n"
        "  const size_t capacity_ = 8;\n"
        "  static constexpr int kMax = 4;\n"
        "};\n"}});
  EXPECT_TRUE(RunPass(PassLocks, tree).empty());
}

TEST(Locks, UnrankedMutexIsFlagged) {
  const Tree tree = MakeTree({{"src/state/x.h",
                               "class Registry {\n"
                               "  sq::Mutex mu_;\n"
                               "};\n"}});
  const auto findings = RunPass(PassLocks, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("lockrank"), std::string::npos);
}

TEST(Locks, UnrankedExemptionSuppresses) {
  const Tree tree = MakeTree(
      {{"src/state/x.h",
        "class Registry {\n"
        "  // sq-lint: unranked-ok(rank injected via constructor)\n"
        "  sq::Mutex mu_;\n"
        "};\n"}});
  EXPECT_TRUE(RunPass(PassLocks, tree).empty());
}

TEST(Locks, UnguardedSiblingFieldIsFlagged) {
  const Tree tree = MakeTree(
      {{"src/state/x.h",
        "class Registry {\n"
        "  sq::Mutex mu_{lockrank::kLeaf, \"r\"};\n"
        "  std::vector<int> items_;\n"
        "};\n"}});
  const auto findings = RunPass(PassLocks, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("items_"), std::string::npos);
}

TEST(Locks, ClassWithoutMutexIsNotHeldToGuards) {
  const Tree tree = MakeTree({{"src/state/x.h",
                               "struct Row {\n"
                               "  std::string key;\n"
                               "  std::vector<int> values;\n"
                               "};\n"}});
  EXPECT_TRUE(RunPass(PassLocks, tree).empty());
}

TEST(Locks, InlineBodiesAndNestedTypesDoNotConfuseMembers) {
  const Tree tree = MakeTree(
      {{"src/state/x.h",
        "class Registry {\n"
        " public:\n"
        "  int Size() const {\n"
        "    int total = 0;\n"
        "    for (auto& e : entries_) { total += e; }\n"
        "    return total;\n"
        "  }\n"
        "  struct Entry {\n"
        "    int weight;\n"
        "  };\n"
        " private:\n"
        "  sq::Mutex mu_{lockrank::kLeaf, \"r\"};\n"
        "  std::vector<int> entries_ SQ_GUARDED_BY(mu_);\n"
        "};\n"}});
  EXPECT_TRUE(RunPass(PassLocks, tree).empty());
}

TEST(Locks, RankTableCrossCheck) {
  const std::string mutex_h =
      "namespace lockrank {\n"
      "inline constexpr int kUnranked = -1;\n"
      "inline constexpr int kKvGrid = 400;\n"
      "inline constexpr int kLeaf = 900;\n"
      "}  // namespace lockrank\n";
  const std::string readme_good =
      "| Rank | Constant |\n"
      "|---|---|\n"
      "| 400 | `kKvGrid` |\n"
      "| 900 | `kLeaf` |\n";
  EXPECT_TRUE(RunPass(PassLocks, MakeTree({{"src/common/mutex.h", mutex_h},
                                           {"README.md", readme_good}}))
                  .empty());

  const std::string readme_stale =
      "| Rank | Constant |\n"
      "|---|---|\n"
      "| 410 | `kKvGrid` |\n"
      "| 900 | `kGone` |\n";
  const auto findings = RunPass(
      PassLocks, MakeTree({{"src/common/mutex.h", mutex_h},
                           {"README.md", readme_stale}}));
  ASSERT_EQ(findings.size(), 3u);  // kKvGrid mismatch, kLeaf missing, kGone
}

// ---------------------------------------------------------------------------
// Pass 4: status discipline

TEST(Status, DiscardedCallNeedsRationale) {
  const Tree tree = MakeTree(
      {{"src/net/x.cc",
        "void F() {\n"
        "  (void)conn->Close();\n"
        "  // best effort; the socket is going away either way\n"
        "  (void)conn->Flush();\n"
        "  (void)unused_param;\n"
        "  (void)0;\n"
        "}\n"}});
  const auto findings = RunPass(PassStatus, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(Status, ContiguousDiscardBlockSharesOneRationale) {
  const Tree tree = MakeTree(
      {{"src/net/x.cc",
        "void F() {\n"
        "  // teardown is best-effort\n"
        "  (void)a.Close();\n"
        "  (void)b.Close();\n"
        "  (void)c.Close();\n"
        "}\n"}});
  EXPECT_TRUE(RunPass(PassStatus, tree).empty());
}

TEST(Status, MultiLineDiscardStatement) {
  const Tree tree = MakeTree(
      {{"src/storage/x.cc",
        "void F() {\n"
        "  (void)WriteRecord(\n"
        "      payload);\n"
        "}\n"}});
  const auto findings = RunPass(PassStatus, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
}

// ---------------------------------------------------------------------------
// Pass 5: metric registry

const char kRegistry[] =
    "namespace sq::metric_names {\n"
    "\n"
    "/// counter — records dequeued into operator instances\n"
    "inline constexpr char kRecordsIn[] = \"dataflow.records_in\";\n"
    "\n"
    "/// gauge — live operator instances\n"
    "inline constexpr char kOperators[] = \"dataflow.operators\";\n"
    "\n"
    "}  // namespace sq::metric_names\n";

const char kRegistryReadme[] =
    "| `dataflow.records_in` | counter | records dequeued |\n"
    "| `dataflow.operators` | gauge | live operator instances |\n";

TEST(Metrics, RegisteredAndUsedIsClean) {
  const Tree tree = MakeTree(
      {{"src/common/metric_names.h", kRegistry},
       {"src/dataflow/x.cc",
        "void F() { metrics.GetCounter(metric_names::kRecordsIn).Add(1); }\n"
        "void G() { metrics.GetGauge(metric_names::kOperators).Set(2); }\n"},
       {"README.md", kRegistryReadme}});
  EXPECT_TRUE(RunPass(PassMetrics, tree).empty());
}

TEST(Metrics, InlineLiteralIsFlagged) {
  const Tree tree = MakeTree(
      {{"src/common/metric_names.h", kRegistry},
       {"src/dataflow/x.cc",
        "void F() { metrics.GetCounter(metric_names::kRecordsIn).Add(1); }\n"
        "void G() { metrics.GetGauge(metric_names::kOperators).Set(2); }\n"
        "void H() { metrics.GetCounter(\"rogue.name\").Add(1); }\n"},
       {"README.md", kRegistryReadme}});
  const auto findings = RunPass(PassMetrics, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("metric_names.h"), std::string::npos);
}

TEST(Metrics, UnusedRegistryEntryIsFlagged) {
  const Tree tree = MakeTree(
      {{"src/common/metric_names.h", kRegistry},
       {"src/dataflow/x.cc",
        "void F() { metrics.GetCounter(metric_names::kRecordsIn).Add(1); }\n"},
       {"README.md", kRegistryReadme}});
  const auto findings = RunPass(PassMetrics, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kOperators"), std::string::npos);
}

TEST(Metrics, MissingReadmeRowIsFlagged) {
  const Tree tree = MakeTree(
      {{"src/common/metric_names.h", kRegistry},
       {"src/dataflow/x.cc",
        "void F() { metrics.GetCounter(metric_names::kRecordsIn).Add(1); }\n"
        "void G() { metrics.GetGauge(metric_names::kOperators).Set(2); }\n"},
       {"README.md",
        "| `dataflow.records_in` | counter | records dequeued |\n"}});
  const auto findings = RunPass(PassMetrics, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("dataflow.operators"),
            std::string::npos);
}

TEST(Metrics, MissingDocCommentIsFlagged) {
  const Tree tree = MakeTree(
      {{"src/common/metric_names.h",
        "inline constexpr char kBare[] = \"a.b\";\n"},
       {"src/sql/x.cc",
        "void F() { metrics.GetCounter(metric_names::kBare).Add(1); }\n"},
       {"README.md", "| `a.b` | ? | ? |\n"}});
  const auto findings = RunPass(PassMetrics, tree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("doc comment"), std::string::npos);
}

TEST(Metrics, DumpTableRendersRegistry) {
  const Tree tree = MakeTree({{"src/common/metric_names.h", kRegistry}});
  const std::string table = DumpMetricsTable(tree);
  EXPECT_NE(table.find("| `dataflow.records_in` | counter | records "
                       "dequeued into operator instances |"),
            std::string::npos);
  EXPECT_NE(table.find("| `dataflow.operators` | gauge |"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Seeded-violation self-test: plant one violation per pass in a scratch tree
// on disk and assert RunSqlint reports it with exit code 1. This proves the
// end-to-end binary (LoadTree + pass + reporting) catches each class of
// violation — a pass silently going blind fails this test.

class SeededViolationTest : public ::testing::Test {
 protected:
  fs::path MakeRoot(const std::string& name) {
    const fs::path root = fs::path(::testing::TempDir()) / "sqlint_seed" /
                          name;
    fs::remove_all(root);
    fs::create_directories(root / "src");
    return root;
  }

  static void WriteFile(const fs::path& path, const std::string& contents) {
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << contents;
  }

  static int Run(const fs::path& root, const std::string& pass,
                 std::string* output) {
    std::ostringstream out;
    const int rc = RunSqlint(root, {pass}, out);
    *output = out.str();
    return rc;
  }
};

TEST_F(SeededViolationTest, DeterminismPassFailsTheBuild) {
  const fs::path root = MakeRoot("determinism");
  WriteFile(root / "src/sql/exec.cc",
            "std::unordered_map<int, int> merged;\n");
  std::string output;
  EXPECT_EQ(Run(root, "determinism", &output), 1);
  EXPECT_NE(output.find("[determinism]"), std::string::npos);
}

TEST_F(SeededViolationTest, WirePassFailsTheBuild) {
  const fs::path root = MakeRoot("wire");
  WriteFile(root / "src/net/wire.h",
            "enum class MsgType : uint8_t {\n"
            "  kHello = 1,\n"
            "};\n");
  WriteFile(root / "src/net/wire.cc",
            "bool IsKnownMsgType(MsgType t) {\n"
            "  return t == MsgType::kHello;\n"
            "}\n"
            "const char* MsgTypeToString(MsgType t) {\n"
            "  return \"?\";\n"  // kHello entry deliberately missing
            "}\n");
  WriteFile(root / "src/net/client.cc",
            "void Send() { Encode(MsgType::kHello); }\n");
  std::string output;
  EXPECT_EQ(Run(root, "wire", &output), 1);
  EXPECT_NE(output.find("[wire]"), std::string::npos);
  EXPECT_NE(output.find("MsgTypeToString"), std::string::npos);
}

TEST_F(SeededViolationTest, LocksPassFailsTheBuild) {
  const fs::path root = MakeRoot("locks");
  WriteFile(root / "src/kv/grid.h",
            "class Grid {\n"
            "  sq::Mutex mu_;\n"  // no lockrank
            "};\n");
  std::string output;
  EXPECT_EQ(Run(root, "locks", &output), 1);
  EXPECT_NE(output.find("[locks]"), std::string::npos);
}

TEST_F(SeededViolationTest, StatusPassFailsTheBuild) {
  const fs::path root = MakeRoot("status");
  WriteFile(root / "src/net/conn.cc",
            "void Teardown() {\n"
            "  (void)socket.Close();\n"  // no rationale comment
            "}\n");
  std::string output;
  EXPECT_EQ(Run(root, "status", &output), 1);
  EXPECT_NE(output.find("[status]"), std::string::npos);
}

TEST_F(SeededViolationTest, MetricsPassFailsTheBuild) {
  const fs::path root = MakeRoot("metrics");
  WriteFile(root / "src/sql/exec.cc",
            "void F() { metrics.GetCounter(\"sneaky.name\").Add(1); }\n");
  std::string output;
  EXPECT_EQ(Run(root, "metrics", &output), 1);
  EXPECT_NE(output.find("[metrics]"), std::string::npos);
}

TEST_F(SeededViolationTest, CleanTreeExitsZero) {
  const fs::path root = MakeRoot("clean");
  WriteFile(root / "src/common/ok.h", "inline int One() { return 1; }\n");
  std::ostringstream out;
  EXPECT_EQ(RunSqlint(root, {}, out), 0);
  EXPECT_NE(out.str().find("clean"), std::string::npos);
}

TEST_F(SeededViolationTest, UnknownPassIsUsageError) {
  const fs::path root = MakeRoot("usage");
  WriteFile(root / "src/common/ok.h", "inline int One() { return 1; }\n");
  std::ostringstream out;
  EXPECT_EQ(RunSqlint(root, {"bogus"}, out), 2);
}

// The repo itself must stay lint-clean; the `sqlint` ctest enforces that,
// and this smoke check keeps the unit binary honest about the real tree
// shape (wire.h, mutex.h, metric_names.h all present and parseable).
TEST(RealTree, LoadsAndFindsAnchorFiles) {
  const Tree tree = LoadTree(SQLINT_REPO_ROOT);
  ASSERT_FALSE(tree.files.empty());
  EXPECT_NE(tree.Find("src/net/wire.h"), nullptr);
  EXPECT_NE(tree.Find("src/common/mutex.h"), nullptr);
  EXPECT_NE(tree.Find("src/common/metric_names.h"), nullptr);
  EXPECT_NE(tree.Find("tests/net_test.cc"), nullptr);
  EXPECT_NE(tree.Find("README.md"), nullptr);
}

}  // namespace
}  // namespace sq::lint
