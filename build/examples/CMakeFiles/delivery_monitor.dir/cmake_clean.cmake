file(REMOVE_RECURSE
  "CMakeFiles/delivery_monitor.dir/delivery_monitor.cpp.o"
  "CMakeFiles/delivery_monitor.dir/delivery_monitor.cpp.o.d"
  "delivery_monitor"
  "delivery_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delivery_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
