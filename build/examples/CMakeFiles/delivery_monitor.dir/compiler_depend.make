# Empty compiler generated dependencies file for delivery_monitor.
# This may be replaced when dependencies are built.
