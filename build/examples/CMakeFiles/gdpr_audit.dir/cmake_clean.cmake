file(REMOVE_RECURSE
  "CMakeFiles/gdpr_audit.dir/gdpr_audit.cpp.o"
  "CMakeFiles/gdpr_audit.dir/gdpr_audit.cpp.o.d"
  "gdpr_audit"
  "gdpr_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdpr_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
