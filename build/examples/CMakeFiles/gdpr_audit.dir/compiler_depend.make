# Empty compiler generated dependencies file for gdpr_audit.
# This may be replaced when dependencies are built.
