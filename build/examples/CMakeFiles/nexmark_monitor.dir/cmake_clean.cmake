file(REMOVE_RECURSE
  "CMakeFiles/nexmark_monitor.dir/nexmark_monitor.cpp.o"
  "CMakeFiles/nexmark_monitor.dir/nexmark_monitor.cpp.o.d"
  "nexmark_monitor"
  "nexmark_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexmark_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
