# Empty dependencies file for nexmark_monitor.
# This may be replaced when dependencies are built.
