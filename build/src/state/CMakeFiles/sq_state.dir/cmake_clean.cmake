file(REMOVE_RECURSE
  "CMakeFiles/sq_state.dir/isolation.cc.o"
  "CMakeFiles/sq_state.dir/isolation.cc.o.d"
  "CMakeFiles/sq_state.dir/snapshot_registry.cc.o"
  "CMakeFiles/sq_state.dir/snapshot_registry.cc.o.d"
  "CMakeFiles/sq_state.dir/squery_state_store.cc.o"
  "CMakeFiles/sq_state.dir/squery_state_store.cc.o.d"
  "libsq_state.a"
  "libsq_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
