src/state/CMakeFiles/sq_state.dir/isolation.cc.o: \
 /root/repo/src/state/isolation.cc /usr/include/stdc-predef.h \
 /root/repo/src/state/isolation.h
