# Empty compiler generated dependencies file for sq_state.
# This may be replaced when dependencies are built.
