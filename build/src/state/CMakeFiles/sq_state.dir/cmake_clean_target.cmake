file(REMOVE_RECURSE
  "libsq_state.a"
)
