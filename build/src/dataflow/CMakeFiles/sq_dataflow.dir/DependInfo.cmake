
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/execution.cc" "src/dataflow/CMakeFiles/sq_dataflow.dir/execution.cc.o" "gcc" "src/dataflow/CMakeFiles/sq_dataflow.dir/execution.cc.o.d"
  "/root/repo/src/dataflow/job_graph.cc" "src/dataflow/CMakeFiles/sq_dataflow.dir/job_graph.cc.o" "gcc" "src/dataflow/CMakeFiles/sq_dataflow.dir/job_graph.cc.o.d"
  "/root/repo/src/dataflow/operators.cc" "src/dataflow/CMakeFiles/sq_dataflow.dir/operators.cc.o" "gcc" "src/dataflow/CMakeFiles/sq_dataflow.dir/operators.cc.o.d"
  "/root/repo/src/dataflow/record.cc" "src/dataflow/CMakeFiles/sq_dataflow.dir/record.cc.o" "gcc" "src/dataflow/CMakeFiles/sq_dataflow.dir/record.cc.o.d"
  "/root/repo/src/dataflow/state_store.cc" "src/dataflow/CMakeFiles/sq_dataflow.dir/state_store.cc.o" "gcc" "src/dataflow/CMakeFiles/sq_dataflow.dir/state_store.cc.o.d"
  "/root/repo/src/dataflow/window.cc" "src/dataflow/CMakeFiles/sq_dataflow.dir/window.cc.o" "gcc" "src/dataflow/CMakeFiles/sq_dataflow.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/sq_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
