file(REMOVE_RECURSE
  "CMakeFiles/sq_dataflow.dir/execution.cc.o"
  "CMakeFiles/sq_dataflow.dir/execution.cc.o.d"
  "CMakeFiles/sq_dataflow.dir/job_graph.cc.o"
  "CMakeFiles/sq_dataflow.dir/job_graph.cc.o.d"
  "CMakeFiles/sq_dataflow.dir/operators.cc.o"
  "CMakeFiles/sq_dataflow.dir/operators.cc.o.d"
  "CMakeFiles/sq_dataflow.dir/record.cc.o"
  "CMakeFiles/sq_dataflow.dir/record.cc.o.d"
  "CMakeFiles/sq_dataflow.dir/state_store.cc.o"
  "CMakeFiles/sq_dataflow.dir/state_store.cc.o.d"
  "CMakeFiles/sq_dataflow.dir/window.cc.o"
  "CMakeFiles/sq_dataflow.dir/window.cc.o.d"
  "libsq_dataflow.a"
  "libsq_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
