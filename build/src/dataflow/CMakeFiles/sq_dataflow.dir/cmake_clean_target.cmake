file(REMOVE_RECURSE
  "libsq_dataflow.a"
)
