# Empty dependencies file for sq_dataflow.
# This may be replaced when dependencies are built.
