file(REMOVE_RECURSE
  "CMakeFiles/sq_query.dir/query_service.cc.o"
  "CMakeFiles/sq_query.dir/query_service.cc.o.d"
  "libsq_query.a"
  "libsq_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
