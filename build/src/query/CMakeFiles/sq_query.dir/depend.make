# Empty dependencies file for sq_query.
# This may be replaced when dependencies are built.
