file(REMOVE_RECURSE
  "libsq_query.a"
)
