file(REMOVE_RECURSE
  "libsq_kv.a"
)
