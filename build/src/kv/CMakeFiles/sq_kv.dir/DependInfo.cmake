
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/grid.cc" "src/kv/CMakeFiles/sq_kv.dir/grid.cc.o" "gcc" "src/kv/CMakeFiles/sq_kv.dir/grid.cc.o.d"
  "/root/repo/src/kv/map_store.cc" "src/kv/CMakeFiles/sq_kv.dir/map_store.cc.o" "gcc" "src/kv/CMakeFiles/sq_kv.dir/map_store.cc.o.d"
  "/root/repo/src/kv/object.cc" "src/kv/CMakeFiles/sq_kv.dir/object.cc.o" "gcc" "src/kv/CMakeFiles/sq_kv.dir/object.cc.o.d"
  "/root/repo/src/kv/snapshot_table.cc" "src/kv/CMakeFiles/sq_kv.dir/snapshot_table.cc.o" "gcc" "src/kv/CMakeFiles/sq_kv.dir/snapshot_table.cc.o.d"
  "/root/repo/src/kv/value.cc" "src/kv/CMakeFiles/sq_kv.dir/value.cc.o" "gcc" "src/kv/CMakeFiles/sq_kv.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
