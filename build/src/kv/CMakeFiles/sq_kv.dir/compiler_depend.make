# Empty compiler generated dependencies file for sq_kv.
# This may be replaced when dependencies are built.
