file(REMOVE_RECURSE
  "CMakeFiles/sq_kv.dir/grid.cc.o"
  "CMakeFiles/sq_kv.dir/grid.cc.o.d"
  "CMakeFiles/sq_kv.dir/map_store.cc.o"
  "CMakeFiles/sq_kv.dir/map_store.cc.o.d"
  "CMakeFiles/sq_kv.dir/object.cc.o"
  "CMakeFiles/sq_kv.dir/object.cc.o.d"
  "CMakeFiles/sq_kv.dir/snapshot_table.cc.o"
  "CMakeFiles/sq_kv.dir/snapshot_table.cc.o.d"
  "CMakeFiles/sq_kv.dir/value.cc.o"
  "CMakeFiles/sq_kv.dir/value.cc.o.d"
  "libsq_kv.a"
  "libsq_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
