file(REMOVE_RECURSE
  "libsq_common.a"
)
