# Empty compiler generated dependencies file for sq_common.
# This may be replaced when dependencies are built.
