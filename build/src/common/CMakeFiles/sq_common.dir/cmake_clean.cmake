file(REMOVE_RECURSE
  "CMakeFiles/sq_common.dir/clock.cc.o"
  "CMakeFiles/sq_common.dir/clock.cc.o.d"
  "CMakeFiles/sq_common.dir/histogram.cc.o"
  "CMakeFiles/sq_common.dir/histogram.cc.o.d"
  "CMakeFiles/sq_common.dir/logging.cc.o"
  "CMakeFiles/sq_common.dir/logging.cc.o.d"
  "CMakeFiles/sq_common.dir/rng.cc.o"
  "CMakeFiles/sq_common.dir/rng.cc.o.d"
  "CMakeFiles/sq_common.dir/status.cc.o"
  "CMakeFiles/sq_common.dir/status.cc.o.d"
  "libsq_common.a"
  "libsq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
