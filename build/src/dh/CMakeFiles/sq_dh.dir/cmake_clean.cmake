file(REMOVE_RECURSE
  "CMakeFiles/sq_dh.dir/delivery.cc.o"
  "CMakeFiles/sq_dh.dir/delivery.cc.o.d"
  "libsq_dh.a"
  "libsq_dh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_dh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
