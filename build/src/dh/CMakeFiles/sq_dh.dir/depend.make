# Empty dependencies file for sq_dh.
# This may be replaced when dependencies are built.
