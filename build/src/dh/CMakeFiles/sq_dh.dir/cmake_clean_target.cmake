file(REMOVE_RECURSE
  "libsq_dh.a"
)
