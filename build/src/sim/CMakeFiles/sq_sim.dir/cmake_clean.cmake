file(REMOVE_RECURSE
  "CMakeFiles/sq_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/sq_sim.dir/cluster_sim.cc.o.d"
  "libsq_sim.a"
  "libsq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
