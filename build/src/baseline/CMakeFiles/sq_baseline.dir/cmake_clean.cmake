file(REMOVE_RECURSE
  "CMakeFiles/sq_baseline.dir/tspoon.cc.o"
  "CMakeFiles/sq_baseline.dir/tspoon.cc.o.d"
  "libsq_baseline.a"
  "libsq_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
