# Empty compiler generated dependencies file for sq_baseline.
# This may be replaced when dependencies are built.
