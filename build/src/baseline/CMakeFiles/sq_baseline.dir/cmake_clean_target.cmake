file(REMOVE_RECURSE
  "libsq_baseline.a"
)
