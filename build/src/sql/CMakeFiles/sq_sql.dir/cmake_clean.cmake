file(REMOVE_RECURSE
  "CMakeFiles/sq_sql.dir/ast.cc.o"
  "CMakeFiles/sq_sql.dir/ast.cc.o.d"
  "CMakeFiles/sq_sql.dir/eval.cc.o"
  "CMakeFiles/sq_sql.dir/eval.cc.o.d"
  "CMakeFiles/sq_sql.dir/executor.cc.o"
  "CMakeFiles/sq_sql.dir/executor.cc.o.d"
  "CMakeFiles/sq_sql.dir/lexer.cc.o"
  "CMakeFiles/sq_sql.dir/lexer.cc.o.d"
  "CMakeFiles/sq_sql.dir/parser.cc.o"
  "CMakeFiles/sq_sql.dir/parser.cc.o.d"
  "CMakeFiles/sq_sql.dir/result_set.cc.o"
  "CMakeFiles/sq_sql.dir/result_set.cc.o.d"
  "libsq_sql.a"
  "libsq_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
