file(REMOVE_RECURSE
  "libsq_sql.a"
)
