# Empty dependencies file for sq_sql.
# This may be replaced when dependencies are built.
