file(REMOVE_RECURSE
  "CMakeFiles/sq_nexmark.dir/nexmark.cc.o"
  "CMakeFiles/sq_nexmark.dir/nexmark.cc.o.d"
  "libsq_nexmark.a"
  "libsq_nexmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_nexmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
