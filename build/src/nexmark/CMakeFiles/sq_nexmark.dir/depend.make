# Empty dependencies file for sq_nexmark.
# This may be replaced when dependencies are built.
