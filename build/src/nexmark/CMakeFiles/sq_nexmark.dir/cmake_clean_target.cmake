file(REMOVE_RECURSE
  "libsq_nexmark.a"
)
