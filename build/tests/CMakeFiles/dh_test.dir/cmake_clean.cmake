file(REMOVE_RECURSE
  "CMakeFiles/dh_test.dir/dh_test.cc.o"
  "CMakeFiles/dh_test.dir/dh_test.cc.o.d"
  "dh_test"
  "dh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
