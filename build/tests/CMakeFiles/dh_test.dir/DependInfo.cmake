
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dh_test.cc" "tests/CMakeFiles/dh_test.dir/dh_test.cc.o" "gcc" "tests/CMakeFiles/dh_test.dir/dh_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/sq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/sq_state.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sq_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/nexmark/CMakeFiles/sq_nexmark.dir/DependInfo.cmake"
  "/root/repo/build/src/dh/CMakeFiles/sq_dh.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/sq_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/sq_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/sq_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
