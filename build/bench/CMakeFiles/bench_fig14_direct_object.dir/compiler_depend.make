# Empty compiler generated dependencies file for bench_fig14_direct_object.
# This may be replaced when dependencies are built.
