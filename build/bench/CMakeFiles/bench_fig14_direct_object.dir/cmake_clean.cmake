file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_direct_object.dir/bench_fig14_direct_object.cc.o"
  "CMakeFiles/bench_fig14_direct_object.dir/bench_fig14_direct_object.cc.o.d"
  "bench_fig14_direct_object"
  "bench_fig14_direct_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_direct_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
