# Empty dependencies file for bench_fig11_query_impact.
# This may be replaced when dependencies are built.
