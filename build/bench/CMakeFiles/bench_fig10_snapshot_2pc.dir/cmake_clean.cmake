file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_snapshot_2pc.dir/bench_fig10_snapshot_2pc.cc.o"
  "CMakeFiles/bench_fig10_snapshot_2pc.dir/bench_fig10_snapshot_2pc.cc.o.d"
  "bench_fig10_snapshot_2pc"
  "bench_fig10_snapshot_2pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_snapshot_2pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
