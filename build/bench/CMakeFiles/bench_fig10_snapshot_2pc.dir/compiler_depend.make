# Empty compiler generated dependencies file for bench_fig10_snapshot_2pc.
# This may be replaced when dependencies are built.
