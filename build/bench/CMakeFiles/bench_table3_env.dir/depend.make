# Empty dependencies file for bench_table3_env.
# This may be replaced when dependencies are built.
