file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_env.dir/bench_table3_env.cc.o"
  "CMakeFiles/bench_table3_env.dir/bench_table3_env.cc.o.d"
  "bench_table3_env"
  "bench_table3_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
