#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "dataflow/execution.h"
#include "dataflow/job_graph.h"
#include "dataflow/operators.h"
#include "kv/grid.h"
#include "query/query_service.h"
#include "state/snapshot_registry.h"
#include "common/rng.h"
#include "state/squery_state_store.h"

namespace sq::query {
namespace {

using dataflow::EdgeKind;
using dataflow::GeneratorSource;
using dataflow::Job;
using dataflow::JobConfig;
using dataflow::JobGraph;
using dataflow::MakeGeneratorSourceFactory;
using dataflow::MakeLambdaOperatorFactory;
using dataflow::OperatorContext;
using dataflow::Record;
using kv::Object;
using kv::Value;
using state::IsolationLevel;

// Keyed counting operator that forwards the input record downstream.
dataflow::OperatorFactory CountAndForward() {
  return MakeLambdaOperatorFactory(
      [](const Record& r, OperatorContext* ctx) {
        Object state = ctx->GetState(r.key).value_or(Object());
        state.Set("count", Value(state.Get("count").AsInt64() + 1));
        ctx->PutState(r.key, state);
        ctx->Emit(Record::Data(r.key, r.payload, r.source_nanos));
        return Status::OK();
      });
}

dataflow::OperatorFactory CountOnly() {
  return MakeLambdaOperatorFactory(
      [](const Record& r, OperatorContext* ctx) {
        Object state = ctx->GetState(r.key).value_or(Object());
        state.Set("count", Value(state.Get("count").AsInt64() + 1));
        ctx->PutState(r.key, state);
        return Status::OK();
      });
}

/// Shared harness: source → countA (forwards) → countB, all S-QUERY-backed.
class QueryIntegrationTest : public ::testing::Test {
 protected:
  QueryIntegrationTest()
      : grid_(kv::GridConfig{.node_count = 3, .partition_count = 24,
                             .backup_count = 1}),
        registry_(&grid_, {.retained_versions = 2, .async_prune = false}),
        service_(&grid_, &registry_) {}

  void StartJob(int64_t total_records, double rate, bool incremental = false,
                int64_t checkpoint_interval_ms = 0) {
    JobGraph graph;
    GeneratorSource::Options options;
    options.total_records = total_records;
    options.target_rate = rate;
    const int32_t src = graph.AddSource(
        "src", 1,
        MakeGeneratorSourceFactory(
            options, [](int64_t offset, OperatorContext* ctx) {
              Object payload;
              payload.Set("n", Value(offset));
              return Record::Data(Value(offset % 10), std::move(payload),
                                  ctx->NowNanos());
            }));
    const int32_t a = graph.AddOperator("countA", 2, CountAndForward());
    const int32_t b = graph.AddOperator("countB", 2, CountOnly());
    EXPECT_TRUE(graph.Connect(src, a, EdgeKind::kKeyed).ok());
    EXPECT_TRUE(graph.Connect(a, b, EdgeKind::kKeyed).ok());

    state::SQueryConfig state_config;
    state_config.incremental = incremental;
    state_config.parallelism = 2;
    JobConfig config;
    config.checkpoint_interval_ms = checkpoint_interval_ms;
    config.partitioner = &grid_.partitioner();
    config.listener = &registry_;
    config.state_store_factory =
        state::MakeSQueryStateStoreFactory(&grid_, state_config, &stats_);
    auto job = Job::Create(graph, std::move(config));
    ASSERT_TRUE(job.ok()) << job.status();
    job_ = std::move(*job);
    ASSERT_TRUE(job_->Start().ok());
  }

  kv::Grid grid_;
  state::SnapshotRegistry registry_;
  QueryService service_;
  state::SQueryStateStats stats_;
  std::unique_ptr<Job> job_;
};

TEST_F(QueryIntegrationTest, LiveStateQueryableWhileRunning) {
  StartJob(/*total_records=*/200000, /*rate=*/100000.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  QueryOptions live;
  live.isolation = IsolationLevel::kReadUncommitted;
  auto result = service_.Execute(
      "SELECT COUNT(*) AS keys, SUM(count) AS records FROM countA", live);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->RowCount(), 1u);
  EXPECT_EQ(result->At(0, "keys").AsInt64(), 10);
  EXPECT_GT(result->At(0, "records").AsInt64(), 0);
  ASSERT_TRUE(job_->Stop().ok());
}

TEST_F(QueryIntegrationTest, SnapshotQueriesRequireACommit) {
  StartJob(50000, 100000.0);
  auto result = service_.Execute("SELECT COUNT(*) FROM snapshot_countA");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
  ASSERT_TRUE(job_->Stop().ok());
}

TEST_F(QueryIntegrationTest, LiveTablesRejectSnapshotIsolation) {
  StartJob(50000, 100000.0);
  auto result = service_.Execute("SELECT COUNT(*) FROM countA");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  ASSERT_TRUE(job_->Stop().ok());
}

// The paper's central consistency argument (Section VII-B, Fig. 6): a
// snapshot query sees a cut where every operator observed the same prefix
// of the stream. countA and countB must agree exactly inside a snapshot,
// even though their live states drift apart while records are in flight.
TEST_F(QueryIntegrationTest, SnapshotCutIsConsistentAcrossOperators) {
  StartJob(/*total_records=*/400000, /*rate=*/200000.0);
  for (int round = 0; round < 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    auto ckpt = job_->TriggerCheckpoint();
    ASSERT_TRUE(ckpt.ok()) << ckpt.status();
    auto result = service_.Execute(
        "SELECT a.count AS ca, b.count AS cb FROM snapshot_countA a JOIN "
        "snapshot_countB b USING(partitionKey)");
    // Alias-qualified fields resolve via the join conflict rule; count is
    // ambiguous, so compare through the qualified names.
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->RowCount(), 10u) << "round " << round;
    auto sums = service_.Execute(
        "SELECT SUM(count) AS total FROM snapshot_countA");
    ASSERT_TRUE(sums.ok());
    auto sums_b = service_.Execute(
        "SELECT SUM(count) AS total FROM snapshot_countB");
    ASSERT_TRUE(sums_b.ok());
    EXPECT_EQ(sums->At(0, "total").AsInt64(),
              sums_b->At(0, "total").AsInt64())
        << "round " << round;
  }
  ASSERT_TRUE(job_->Stop().ok());
}

// Fig. 6: a query pinned to snapshot N returns the same answer forever,
// even after later checkpoints and failures.
TEST_F(QueryIntegrationTest, PinnedSnapshotIsRepeatable) {
  StartJob(400000, 200000.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto ckpt = job_->TriggerCheckpoint();
  ASSERT_TRUE(ckpt.ok());
  const std::string sql = "SELECT SUM(count) AS total FROM snapshot_countA "
                          "WHERE ssid=" + std::to_string(*ckpt);
  auto first = service_.Execute(sql);
  ASSERT_TRUE(first.ok()) << first.status();
  const int64_t pinned = first->At(0, "total").AsInt64();
  EXPECT_GT(pinned, 0);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto second_ckpt = job_->TriggerCheckpoint();
  ASSERT_TRUE(second_ckpt.ok());
  ASSERT_TRUE(job_->InjectFailureAndRecover().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  auto again = service_.Execute(sql);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->At(0, "total").AsInt64(), pinned);
  // And "latest" moved on: totals at the second snapshot are larger.
  auto latest = service_.Execute(
      "SELECT SUM(count) AS total FROM snapshot_countA");
  ASSERT_TRUE(latest.ok());
  EXPECT_GE(latest->At(0, "total").AsInt64(), pinned);
  ASSERT_TRUE(job_->Stop().ok());
}

// Fig. 5: live reads are dirty — a crash makes observed values retroactively
// invalid. After recovery the live count regresses to the snapshot value.
TEST_F(QueryIntegrationTest, LiveReadsAreDirtyAcrossFailure) {
  StartJob(800000, 150000.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(job_->TriggerCheckpoint().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  QueryOptions live;
  live.isolation = IsolationLevel::kReadUncommitted;
  auto before = service_.Execute(
      "SELECT SUM(count) AS total FROM countA", live);
  ASSERT_TRUE(before.ok()) << before.status();
  const int64_t observed_before = before->At(0, "total").AsInt64();

  auto committed = service_.Execute(
      "SELECT SUM(count) AS total FROM snapshot_countA");
  ASSERT_TRUE(committed.ok());
  const int64_t committed_total = committed->At(0, "total").AsInt64();
  ASSERT_GT(observed_before, committed_total)
      << "live state should be ahead of the last checkpoint";

  ASSERT_TRUE(job_->InjectFailureAndRecover().ok());
  auto after = service_.Execute(
      "SELECT SUM(count) AS total FROM countA", live);
  ASSERT_TRUE(after.ok()) << after.status();
  // Directly after recovery the live state equals the checkpoint again:
  // everything read beyond it was a dirty read. (The job is running, so
  // allow it to have re-processed a little.)
  EXPECT_LT(after->At(0, "total").AsInt64(), observed_before);
  ASSERT_TRUE(job_->Stop().ok());
}

TEST_F(QueryIntegrationTest, VersionsTableExposesRetainedVersions) {
  StartJob(400000, 200000.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(job_->TriggerCheckpoint().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(job_->TriggerCheckpoint().ok());
  auto result = service_.Execute(
      "SELECT ssid, SUM(count) AS total FROM snapshot_countA__versions "
      "GROUP BY ssid ORDER BY ssid");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->RowCount(), 2u);
  EXPECT_EQ(result->At(0, "ssid").AsInt64(), 1);
  EXPECT_EQ(result->At(1, "ssid").AsInt64(), 2);
  EXPECT_LE(result->At(0, "total").AsInt64(),
            result->At(1, "total").AsInt64());
  ASSERT_TRUE(job_->Stop().ok());
}

TEST_F(QueryIntegrationTest, DirectObjectInterface) {
  StartJob(200000, 150000.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(job_->TriggerCheckpoint().ok());

  auto live = service_.GetLiveObjects(
      "countA", {Value(int64_t{0}), Value(int64_t{1}), Value(int64_t{999})});
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(live->size(), 2u);  // key 999 never existed
  for (const auto& [key, obj] : *live) {
    EXPECT_GT(obj.Get("count").AsInt64(), 0);
  }

  auto snap = service_.GetSnapshotObjects(
      "countA", {Value(int64_t{0}), Value(int64_t{1})});
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_EQ(snap->size(), 2u);
  EXPECT_GE(service_.last_ssid_resolve_nanos(), 0);

  auto all = service_.ScanLiveObjects("countA");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 10u);

  EXPECT_FALSE(service_.GetLiveObjects("nosuch", {Value(int64_t{0})}).ok());
  ASSERT_TRUE(job_->Stop().ok());
}

TEST_F(QueryIntegrationTest, IncrementalModeMatchesFullModeResults) {
  StartJob(120000, 0.0, /*incremental=*/true);
  ASSERT_TRUE(job_->AwaitCompletion().ok());
  // All records processed; take a final snapshot over the finished state is
  // not possible (job finished), so restart a fresh job for checkpointing.
  // Instead verify via a second pipeline below.
  SUCCEED();
}

// Property: for a random workload with periodic checkpoints, the snapshot
// view under incremental snapshots equals the view under full snapshots.
TEST(IncrementalEquivalenceTest, ViewsMatchFullSnapshots) {
  for (const bool incremental : {false, true}) {
    kv::Grid grid(kv::GridConfig{.node_count = 2, .partition_count = 8,
                                 .backup_count = 0});
    state::SQueryConfig config;
    config.incremental = incremental;
    state::SQueryStateStore store(&grid, "op", 0, config);
    sq::Rng rng(1234);  // same seed for both modes
    std::map<int64_t, int64_t> reference;
    std::map<int64_t, std::map<int64_t, int64_t>> view_at;  // ssid -> state
    for (int64_t ckpt = 1; ckpt <= 6; ++ckpt) {
      for (int i = 0; i < 500; ++i) {
        const int64_t key = static_cast<int64_t>(rng.NextBounded(60));
        if (rng.NextBool(0.15)) {
          store.Remove(Value(key));
          reference.erase(key);
        } else {
          const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
          Object o;
          o.Set("v", Value(v));
          store.Put(Value(key), std::move(o));
          reference[key] = v;
        }
      }
      ASSERT_TRUE(store.SnapshotTo(ckpt).ok());
      view_at[ckpt] = reference;
    }
    kv::SnapshotTable* table = grid.GetSnapshotTable("snapshot_op");
    for (const auto& [ssid, expected] : view_at) {
      std::map<int64_t, int64_t> actual;
      table->ScanAt(ssid, [&actual](const Value& key, int64_t,
                                    const Object& value) {
        actual[key.AsInt64()] = value.Get("v").AsInt64();
      });
      EXPECT_EQ(actual, expected)
          << "ssid " << ssid << " incremental=" << incremental;
    }
  }
}

}  // namespace
}  // namespace sq::query
