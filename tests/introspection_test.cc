// Engine self-introspection: the `__metrics` / `__operators` /
// `__checkpoints` system tables must return live statistics — through SQL
// and through the direct object interface — while a NEXMark Q6 job runs,
// and Job::Create must reject state-store factories whose partitioner
// breaks colocation with the job.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "dataflow/execution.h"
#include "kv/grid.h"
#include "nexmark/nexmark.h"
#include "query/query_service.h"
#include "sql/result_set.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"

namespace sq {
namespace {

/// A running NEXMark Q6 pipeline with full instrumentation and the system
/// tables registered.
struct Q6Harness {
  MetricsRegistry metrics;
  std::unique_ptr<kv::Grid> grid;
  std::unique_ptr<state::SnapshotRegistry> registry;
  std::unique_ptr<query::QueryService> query;
  std::unique_ptr<dataflow::Job> job;

  ~Q6Harness() {
    if (job != nullptr) (void)job->Stop();
  }
};

std::unique_ptr<Q6Harness> StartQ6Harness() {
  auto h = std::make_unique<Q6Harness>();
  h->grid = std::make_unique<kv::Grid>(kv::GridConfig{
      .node_count = 3, .partition_count = 16, .backup_count = 0});
  h->registry = std::make_unique<state::SnapshotRegistry>(
      h->grid.get(),
      state::SnapshotRegistry::Options{.retained_versions = 2,
                                       .async_prune = false,
                                       .metrics = &h->metrics});
  h->query = std::make_unique<query::QueryService>(
      h->grid.get(), h->registry.get(), nullptr, &h->metrics);

  nexmark::NexmarkConfig config;
  config.num_sellers = 50;
  config.bids_per_auction = 3;
  config.total_events = -1;  // unbounded: the job stays live while we query
  config.target_rate = 20000.0;
  dataflow::JobGraph graph = nexmark::BuildQ6Graph(
      config, /*source_parallelism=*/1, /*operator_parallelism=*/2,
      /*latency=*/nullptr);

  state::SQueryConfig state_config;
  state_config.parallelism = 2;
  state_config.metrics = &h->metrics;
  dataflow::JobConfig job_config;
  job_config.checkpoint_interval_ms = 0;  // checkpoints triggered manually
  job_config.partitioner = &h->grid->partitioner();
  job_config.listener = h->registry.get();
  job_config.metrics = &h->metrics;
  job_config.state_store_factory =
      state::MakeSQueryStateStoreFactory(h->grid.get(), state_config);

  auto job = dataflow::Job::Create(graph, std::move(job_config));
  EXPECT_TRUE(job.ok()) << job.status().ToString();
  if (!job.ok()) return nullptr;
  h->job = std::move(*job);
  h->query->RegisterEngineIntrospection(h->job.get());
  EXPECT_TRUE(h->job->Start().ok());
  // Let some records flow before introspecting.
  while (h->job->ProcessedCount(nexmark::kAverageVertex) < 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return h;
}

int64_t FindInt(const sql::ResultSet& rs, size_t row,
                const std::string& column) {
  for (size_t c = 0; c < rs.columns.size(); ++c) {
    if (rs.columns[c] == column) return rs.rows[row][c].AsInt64();
  }
  ADD_FAILURE() << "no column " << column;
  return -1;
}

TEST(IntrospectionTest, OperatorsTableReturnsLiveStatsThroughSql) {
  auto h = StartQ6Harness();
  ASSERT_NE(h, nullptr);

  auto result = h->query->Execute(
      "SELECT vertex, instance, records_in, records_out, queue_capacity "
      "FROM __operators ORDER BY vertex, instance");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // bids(1) + winningbids(2) + q6avg(2) + sink(1) workers.
  ASSERT_EQ(result->rows.size(), 6u);

  int64_t total_in = 0;
  int64_t total_out = 0;
  for (size_t r = 0; r < result->rows.size(); ++r) {
    total_in += FindInt(*result, r, "records_in");
    total_out += FindInt(*result, r, "records_out");
    EXPECT_GT(FindInt(*result, r, "queue_capacity"), 0);
  }
  EXPECT_GT(total_in, 0);
  EXPECT_GT(total_out, 0);

  // The acceptance query of the issue: rank workers by tail latency.
  auto ranked = h->query->Execute(
      "SELECT vertex, p99_nanos FROM __operators ORDER BY p99_nanos DESC");
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  ASSERT_EQ(ranked->rows.size(), 6u);
  for (size_t r = 1; r < ranked->rows.size(); ++r) {
    EXPECT_GE(FindInt(*ranked, r - 1, "p99_nanos"),
              FindInt(*ranked, r, "p99_nanos"));
  }
}

TEST(IntrospectionTest, CheckpointsAndMetricsTablesReflectCommits) {
  auto h = StartQ6Harness();
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->job->TriggerCheckpoint().ok());
  ASSERT_TRUE(h->job->TriggerCheckpoint().ok());

  auto ckpts = h->query->Execute(
      "SELECT id, state, phase1_nanos FROM __checkpoints "
      "WHERE state = 'committed' ORDER BY id");
  ASSERT_TRUE(ckpts.ok()) << ckpts.status().ToString();
  ASSERT_GE(ckpts->rows.size(), 2u);
  EXPECT_GT(FindInt(*ckpts, 0, "phase1_nanos"), 0);

  // The registry-backed metrics are visible through SQL, with live values.
  auto committed = h->query->Execute(
      "SELECT value FROM __metrics WHERE name = 'checkpoint.committed'");
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  ASSERT_EQ(committed->rows.size(), 1u);
  EXPECT_GE(FindInt(*committed, 0, "value"), 2);

  auto entries = h->query->Execute(
      "SELECT value FROM __metrics WHERE name = 'state.snapshot_entries'");
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->rows.size(), 1u);
  EXPECT_GT(FindInt(*entries, 0, "value"), 0);

  // Aggregation over the engine's own histograms works like any table.
  auto agg = h->query->Execute(
      "SELECT COUNT(*) AS n FROM __metrics WHERE kind = 'histogram' "
      "AND count > 0");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_GT(FindInt(*agg, 0, "n"), 0);
}

TEST(IntrospectionTest, DirectObjectInterfaceMatchesSql) {
  auto h = StartQ6Harness();
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->job->TriggerCheckpoint().ok());

  auto rows = h->query->ScanSystemObjects("__operators");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 6u);
  for (const kv::Object& row : *rows) {
    EXPECT_TRUE(row.Has("vertex"));
    EXPECT_TRUE(row.Has("records_in"));
    EXPECT_TRUE(row.Has("p99_nanos"));
  }

  auto ckpt_rows = h->query->ScanSystemObjects("__checkpoints");
  ASSERT_TRUE(ckpt_rows.ok()) << ckpt_rows.status().ToString();
  ASSERT_GE(ckpt_rows->size(), 1u);
  EXPECT_TRUE(ckpt_rows->front().Get("committed").bool_value());

  auto metric_rows = h->query->ScanSystemObjects("__metrics");
  ASSERT_TRUE(metric_rows.ok()) << metric_rows.status().ToString();
  EXPECT_GT(metric_rows->size(), 0u);

  EXPECT_TRUE(
      h->query->ScanSystemObjects("__no_such_table").status().IsNotFound());

  // Queries over system tables are themselves metered.
  (void)h->query->Execute("SELECT COUNT(*) FROM __operators");
  EXPECT_GT(h->metrics.GetCounter("query.count")->Value(), 0);
}

TEST(IntrospectionTest, SystemTablesReadableAtEveryIsolationLevel) {
  auto h = StartQ6Harness();
  ASSERT_NE(h, nullptr);
  for (state::IsolationLevel level :
       {state::IsolationLevel::kReadUncommitted,
        state::IsolationLevel::kReadCommittedNoFailures,
        state::IsolationLevel::kSnapshotIsolation,
        state::IsolationLevel::kSerializable}) {
    query::QueryOptions options;
    options.isolation = level;
    auto result =
        h->query->Execute("SELECT COUNT(*) AS n FROM __operators", options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(FindInt(*result, 0, "n"), 6);
  }
}

TEST(ColocationTest, MismatchedFactoryPartitionerIsRejected) {
  kv::Grid grid(kv::GridConfig{
      .node_count = 3, .partition_count = 16, .backup_count = 0});
  nexmark::NexmarkConfig config;
  config.total_events = 100;
  dataflow::JobGraph graph =
      nexmark::BuildQ6Graph(config, 1, 2, /*latency=*/nullptr);

  state::SQueryConfig state_config;
  state_config.parallelism = 2;

  // The factory declares the grid's 16-way partitioner, but the job is given
  // a different one: silent colocation break, must be rejected.
  const kv::Partitioner other(64);
  dataflow::JobConfig mismatched;
  mismatched.partitioner = &other;
  mismatched.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);
  auto job = dataflow::Job::Create(graph, std::move(mismatched));
  ASSERT_FALSE(job.ok());
  EXPECT_TRUE(job.status().IsInvalidArgument());

  // Leaving JobConfig::partitioner unset pits the job's owned default
  // (kDefaultPartitionCount) against the grid's 16: also a mismatch.
  dataflow::JobConfig defaulted;
  defaulted.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);
  ASSERT_NE(grid.partitioner().partition_count(),
            kv::kDefaultPartitionCount);
  auto job2 = dataflow::Job::Create(graph, std::move(defaulted));
  ASSERT_FALSE(job2.ok());
  EXPECT_TRUE(job2.status().IsInvalidArgument());

  // Sharing the grid's partitioner (the documented contract) works.
  dataflow::JobConfig shared;
  shared.partitioner = &grid.partitioner();
  shared.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);
  auto job3 = dataflow::Job::Create(graph, std::move(shared));
  EXPECT_TRUE(job3.ok()) << job3.status().ToString();
}

TEST(ColocationTest, GridDefaultsToTheSharedPartitionCount) {
  // The silent break fixed here: Grid used to default to 32 partitions while
  // jobs fell back to 271 — the same constant must back both defaults.
  kv::Grid grid(kv::GridConfig{});
  EXPECT_EQ(grid.partitioner().partition_count(), kv::kDefaultPartitionCount);
  EXPECT_EQ(kv::kDefaultPartitionCount, 271);
}

}  // namespace
}  // namespace sq
