#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "baseline/tspoon.h"
#include "dataflow/execution.h"
#include "dataflow/job_graph.h"
#include "dataflow/operators.h"

namespace sq::baseline {
namespace {

using dataflow::EdgeKind;
using dataflow::OperatorContext;
using dataflow::Record;
using kv::Object;
using kv::Value;

dataflow::OperatorFactory KeyedStoreOperator() {
  return dataflow::MakeLambdaOperatorFactory(
      [](const Record& r, OperatorContext* ctx) {
        ctx->PutState(r.key, r.payload);
        return Status::OK();
      });
}

TEST(TSpoonTest, QueriesAreServedThroughTheStream) {
  constexpr int64_t kKeys = 64;
  constexpr int32_t kParallelism = 2;
  kv::Partitioner partitioner(24);
  TSpoonMailbox mailbox(kParallelism);

  dataflow::JobGraph graph;
  dataflow::GeneratorSource::Options options;
  options.total_records = -1;  // unbounded stream keeps serving queries
  const int32_t src = graph.AddSource(
      "src", 1,
      dataflow::MakeGeneratorSourceFactory(
          options, [](int64_t offset, OperatorContext* ctx) {
            Object payload;
            payload.Set("v", Value(offset));
            return Record::Data(Value(offset % kKeys), std::move(payload),
                                ctx->NowNanos());
          }));
  const int32_t op = graph.AddOperator(
      "state", kParallelism,
      MakeTSpoonQueryableFactory(KeyedStoreOperator(), &mailbox));
  ASSERT_TRUE(graph.Connect(src, op, EdgeKind::kKeyed).ok());

  dataflow::JobConfig config;
  config.checkpoint_interval_ms = 0;
  config.partitioner = &partitioner;
  auto job = dataflow::Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok()) << job.status();
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TSpoonClient client(&mailbox, &partitioner);
  // Point lookup.
  auto one = client.Get({Value(int64_t{5})});
  ASSERT_TRUE(one.ok()) << one.status();
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0].first.AsInt64(), 5);
  EXPECT_EQ((*one)[0].second.Get("v").AsInt64() % kKeys, 5);

  // Multi-key spanning both instances.
  std::vector<Value> keys;
  for (int64_t k = 0; k < kKeys; ++k) keys.emplace_back(k);
  auto all = client.Get(keys);
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->size(), static_cast<size_t>(kKeys));

  // Missing keys are omitted.
  auto missing = client.Get({Value(int64_t{kKeys + 100})});
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());

  ASSERT_TRUE((*job)->Stop().ok());
  mailbox.Close();
}

TEST(TSpoonTest, TimesOutWhenStreamStops) {
  kv::Partitioner partitioner(8);
  TSpoonMailbox mailbox(1);
  TSpoonClient client(&mailbox, &partitioner);
  // No operator is draining the mailbox.
  auto result = client.Get({Value(int64_t{1})}, /*timeout_ms=*/50);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout());
}

TEST(TSpoonTest, ClosedMailboxFailsFast) {
  kv::Partitioner partitioner(8);
  TSpoonMailbox mailbox(1);
  mailbox.Close();
  TSpoonClient client(&mailbox, &partitioner);
  auto result = client.Get({Value(int64_t{1})}, 50);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
}

}  // namespace
}  // namespace sq::baseline
