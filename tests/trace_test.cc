// End-to-end tracing: span trees must survive thread-pool fan-out, the
// bounded journal must count what it drops, the Chrome/Perfetto export must
// emit valid JSON (control characters included), EXPLAIN / EXPLAIN ANALYZE
// must agree with plain execution, and a checkpoint must leave a complete
// phase-1/phase-2 span tree behind the `__spans` table. The final hammer
// runs recorders against snapshot/export concurrently for the TSan job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "dataflow/execution.h"
#include "dataflow/job_graph.h"
#include "dataflow/operators.h"
#include "kv/grid.h"
#include "query/query_service.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"
#include "trace/trace.h"

namespace sq {
namespace {

using kv::Object;
using kv::Value;

/// Fresh default config + empty journal for every test.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SetConfig(trace::TraceConfig{});
    trace::ClearForTest();
  }
  void TearDown() override {
    trace::SetConfig(trace::TraceConfig{});
    trace::SetJournalCapacityForTest(65536);
    trace::ClearForTest();
  }
};

std::vector<trace::TraceSpan> SpansNamed(
    const std::vector<trace::TraceSpan>& spans, const std::string& name) {
  std::vector<trace::TraceSpan> out;
  for (const trace::TraceSpan& s : spans) {
    if (name == s.name) out.push_back(s);
  }
  return out;
}

TEST_F(TraceTest, NestedScopedSpansFormOneTree) {
  {
    trace::ScopedSpan root(trace::Category::kOther, "root");
    root.AddAttr("k", int64_t{7});
    {
      trace::ScopedSpan child(trace::Category::kOther, "child");
      trace::ScopedSpan grandchild(trace::Category::kOther, "grandchild");
    }
    trace::ScopedSpan sibling(trace::Category::kOther, "sibling");
  }
  const std::vector<trace::TraceSpan> spans = trace::SnapshotSpans();
  ASSERT_EQ(spans.size(), 4u);

  const trace::TraceSpan root = SpansNamed(spans, "root").at(0);
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_NE(root.span_id, 0u);
  ASSERT_EQ(root.attrs.size(), 1u);
  EXPECT_STREQ(root.attrs[0].key, "k");
  EXPECT_EQ(root.attrs[0].value, "7");

  const trace::TraceSpan child = SpansNamed(spans, "child").at(0);
  const trace::TraceSpan grandchild = SpansNamed(spans, "grandchild").at(0);
  const trace::TraceSpan sibling = SpansNamed(spans, "sibling").at(0);
  EXPECT_EQ(child.parent_id, root.span_id);
  EXPECT_EQ(grandchild.parent_id, child.span_id);
  EXPECT_EQ(sibling.parent_id, root.span_id);
  for (const trace::TraceSpan& s : spans) {
    EXPECT_EQ(s.trace_id, root.trace_id);
    EXPECT_GE(s.end_nanos, s.start_nanos);
  }
}

TEST_F(TraceTest, ParallelForSpansParentAcrossThreads) {
  ThreadPool pool(4);
  {
    trace::ScopedSpan root(trace::Category::kOther, "fanout_root");
    // Workers have no TLS scope: the parent context crosses explicitly,
    // exactly like the executor's partition fan-out.
    const trace::SpanContext ctx = root.context();
    pool.ParallelFor(8, 4, [&ctx](int32_t p) {
      const int64_t t0 = trace::NowNanos();
      trace::RecordSpan(trace::Category::kOther, "fanout_task", ctx, t0,
                        trace::NowNanos(), {{"p", p}});
    });
  }
  const std::vector<trace::TraceSpan> spans = trace::SnapshotSpans();
  const trace::TraceSpan root = SpansNamed(spans, "fanout_root").at(0);
  const std::vector<trace::TraceSpan> tasks =
      SpansNamed(spans, "fanout_task");
  ASSERT_EQ(tasks.size(), 8u);
  for (const trace::TraceSpan& t : tasks) {
    EXPECT_EQ(t.trace_id, root.trace_id);
    EXPECT_EQ(t.parent_id, root.span_id);
  }
}

TEST_F(TraceTest, RootSamplingKeepsTreesCoherent) {
  trace::TraceConfig config;
  config.sample_every[static_cast<size_t>(trace::Category::kOther)] = 4;
  trace::SetConfig(config);
  for (int i = 0; i < 100; ++i) {
    trace::ScopedSpan root(trace::Category::kOther, "sampled_root");
    trace::ScopedSpan child(trace::Category::kOther, "sampled_child");
  }
  const std::vector<trace::TraceSpan> spans = trace::SnapshotSpans();
  const std::vector<trace::TraceSpan> roots =
      SpansNamed(spans, "sampled_root");
  const std::vector<trace::TraceSpan> children =
      SpansNamed(spans, "sampled_child");
  // 1-in-4 of the roots record; children follow their root, never orphaned.
  EXPECT_EQ(roots.size(), 25u);
  ASSERT_EQ(children.size(), roots.size());
  std::set<uint64_t> root_ids;
  for (const trace::TraceSpan& r : roots) root_ids.insert(r.span_id);
  for (const trace::TraceSpan& c : children) {
    EXPECT_EQ(root_ids.count(c.parent_id), 1u);
  }
}

TEST_F(TraceTest, DisabledCategoryRecordsNothingButForcedStillDoes) {
  trace::TraceConfig config;
  config.sample_every[static_cast<size_t>(trace::Category::kOther)] = 0;
  trace::SetConfig(config);
  { trace::ScopedSpan off(trace::Category::kOther, "off"); }
  trace::ScopedSpan forced(trace::Category::kOther, "forced_root",
                           trace::RootContext(trace::NewTraceId(),
                                              /*forced=*/true));
  EXPECT_TRUE(forced.recording());
  EXPECT_TRUE(SpansNamed(trace::SnapshotSpans(), "off").empty());
}

TEST_F(TraceTest, JournalOverflowSetsDroppedCounter) {
  trace::SetJournalCapacityForTest(16);
  const int64_t dropped_before = trace::DroppedSpans();
  const int64_t counter_before =
      MetricsRegistry::Default()->GetCounter("trace.dropped_spans")->Value();
  for (int i = 0; i < 600; ++i) {
    trace::RecordSpan(trace::Category::kOther, "flood",
                      trace::RootContext(trace::NewTraceId()), i, i + 1);
  }
  const std::vector<trace::TraceSpan> spans = trace::SnapshotSpans();
  EXPECT_LE(spans.size(), 16u);
  // Everything beyond the journal capacity was dropped oldest-first and
  // counted, both in DroppedSpans() and the metrics registry.
  EXPECT_GE(trace::DroppedSpans() - dropped_before, 600 - 16);
  EXPECT_EQ(
      MetricsRegistry::Default()->GetCounter("trace.dropped_spans")->Value() -
          counter_before,
      trace::DroppedSpans() - dropped_before);
  // The survivors are the newest spans.
  for (const trace::TraceSpan& s : spans) {
    EXPECT_GE(s.start_nanos, 600 - 16);
  }
}

// --- Minimal JSON validator (no external deps): accepts exactly the
// RFC 8259 grammar the exporter is supposed to emit.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ObjectValue();
      case '[': return ArrayValue();
      case '"': return StringValue();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return NumberValue();
    }
  }

  bool ObjectValue() {
    ++pos_;  // {
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!StringValue()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool ArrayValue() {
    ++pos_;  // [
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool StringValue() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool NumberValue() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST_F(TraceTest, ChromeJsonExportIsValidAndEscapesControlChars) {
  {
    trace::ScopedSpan root(trace::Category::kQuery, "export_root");
    root.AddAttr("nasty", std::string("quote\" slash\\ nl\n tab\t ctrl\x01"));
    trace::ScopedSpan child(trace::Category::kStorage, "export_child");
  }
  const std::string path =
      ::testing::TempDir() + "/trace_test_export.trace.json";
  const Status status = trace::ExportChromeJson(path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("export_root"), std::string::npos);
  EXPECT_NE(json.find("export_child"), std::string::npos);
  // The control character was escaped, never emitted raw.
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_NE(json.find("quote\\\""), std::string::npos);
}

/// Live table + query service, small enough for differential EXPLAIN runs.
class ExplainTest : public TraceTest {
 protected:
  ExplainTest()
      : grid_(kv::GridConfig{
            .node_count = 2, .partition_count = 8, .backup_count = 0}),
        registry_(&grid_, {.retained_versions = 2, .async_prune = false}),
        service_(&grid_, &registry_),
        store_(&grid_, "metrics", 0, state::SQueryConfig{.parallelism = 1}) {
    for (int64_t key = 0; key < 200; ++key) {
      Object o;
      o.Set("v", Value(key * 3 % 101));
      o.Set("g", Value(key % 4));
      store_.Put(Value(key), std::move(o));
    }
    options_.isolation = state::IsolationLevel::kReadCommittedNoFailures;
  }

  kv::Grid grid_;
  state::SnapshotRegistry registry_;
  query::QueryService service_;
  state::SQueryStateStore store_;
  query::QueryOptions options_;
};

TEST_F(ExplainTest, ExplainReturnsPlanWithoutExecuting) {
  auto plan = service_.ExecuteWithStats(
      "EXPLAIN SELECT g, COUNT(*) AS c FROM metrics WHERE v > 10 "
      "GROUP BY g ORDER BY g LIMIT 3",
      options_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->result.columns, std::vector<std::string>{"plan"});
  ASSERT_FALSE(plan->result.rows.empty());
  const std::string first = plan->result.rows[0][0].string_value();
  EXPECT_EQ(first.rfind("Scan:", 0), 0u) << first;
  // Plan only: nothing was scanned, no query trace was started.
  EXPECT_EQ(plan->stats.rows_scanned, 0);
  EXPECT_EQ(plan->trace_id, 0u);

  std::string all;
  for (const auto& row : plan->result.rows) {
    all += row[0].string_value();
    all += "\n";
  }
  EXPECT_NE(all.find("Aggregate:"), std::string::npos) << all;
  EXPECT_NE(all.find("OrderBy:"), std::string::npos) << all;
  EXPECT_NE(all.find("Limit: 3"), std::string::npos) << all;
}

TEST_F(ExplainTest, ExplainAnalyzeMatchesPlainExecution) {
  const std::string body =
      "SELECT g, COUNT(*) AS c FROM metrics WHERE v > 10 GROUP BY g";
  auto plain = service_.ExecuteWithStats(body, options_);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_GT(plain->stats.rows_scanned, 0);

  auto analyzed =
      service_.ExecuteWithStats("EXPLAIN ANALYZE " + body, options_);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  // ANALYZE really executed: identical scan instrumentation, and a forced
  // trace id that survives sampling.
  EXPECT_EQ(analyzed->stats.rows_scanned, plain->stats.rows_scanned);
  EXPECT_EQ(analyzed->stats.rows_returned, plain->stats.rows_returned);
  EXPECT_EQ(analyzed->stats.partitions_scanned,
            plain->stats.partitions_scanned);
  EXPECT_NE(analyzed->trace_id, 0u);

  std::string all;
  for (const auto& row : analyzed->result.rows) {
    all += row[0].string_value();
    all += "\n";
  }
  EXPECT_NE(all.find("Execution: " + std::to_string(plain->result.rows.size()) +
                     " rows"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find("Trace:"), std::string::npos) << all;
  // Per-partition span timings made it into the output.
  EXPECT_NE(all.find("partition_"), std::string::npos) << all;

  // ...and the same spans are queryable through __spans by that trace id.
  auto spans = service_.Execute(
      "SELECT name FROM __spans WHERE trace_id = " +
          std::to_string(analyzed->trace_id),
      options_);
  ASSERT_TRUE(spans.ok()) << spans.status().ToString();
  EXPECT_GT(spans->rows.size(), 2u);
}

TEST_F(ExplainTest, ExplainAnalyzeRecordsEvenWhenTracingDisabled) {
  trace::TraceConfig config;
  config.enabled = false;
  trace::SetConfig(config);
  auto analyzed = service_.ExecuteWithStats(
      "EXPLAIN ANALYZE SELECT COUNT(*) AS c FROM metrics", options_);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->trace_id, 0u);
  std::string all;
  for (const auto& row : analyzed->result.rows) {
    all += row[0].string_value();
    all += "\n";
  }
  EXPECT_NE(all.find("query:"), std::string::npos) << all;
}

// --- Checkpoint span tree, end to end through a real job (acceptance
// criterion: SELECT * FROM __spans WHERE category = 'checkpoint' shows the
// complete phase-1 / phase-2 tree of a committed checkpoint).

dataflow::OperatorFactory NumbersSource(int64_t n, int64_t keys,
                                        double rate) {
  dataflow::GeneratorSource::Options options;
  options.total_records = n;
  options.target_rate = rate;
  return dataflow::MakeGeneratorSourceFactory(
      options, [keys](int64_t offset, dataflow::OperatorContext* ctx) {
        Object payload;
        payload.Set("n", Value(offset));
        return dataflow::Record::Data(Value(offset % keys),
                                      std::move(payload), ctx->NowNanos());
      });
}

dataflow::OperatorFactory CountOperator() {
  return dataflow::MakeLambdaOperatorFactory(
      [](const dataflow::Record& r, dataflow::OperatorContext* ctx) {
        Object state = ctx->GetState(r.key).value_or(Object());
        const int64_t count = state.Get("count").AsInt64() + 1;
        state.Set("count", Value(count));
        ctx->PutState(r.key, state);
        Object out;
        out.Set("count", Value(count));
        ctx->Emit(dataflow::Record::Data(r.key, std::move(out),
                                         r.source_nanos));
        return Status::OK();
      });
}

TEST_F(TraceTest, CheckpointLeavesCompleteSpanTreeInSpansTable) {
  kv::Grid grid(kv::GridConfig{
      .node_count = 2, .partition_count = 8, .backup_count = 0});
  state::SnapshotRegistry registry(
      &grid, {.retained_versions = 2, .async_prune = false});
  query::QueryService service(&grid, &registry);

  dataflow::JobGraph graph;
  dataflow::CollectingSink::Collector collector;
  const int32_t src = graph.AddSource(
      "src", 1, NumbersSource(1 << 22, 8, /*rate=*/50000.0));
  const int32_t count = graph.AddOperator("count", 2, CountOperator());
  const int32_t sink = graph.AddSink(
      "sink", 1, dataflow::MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, count, dataflow::EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(count, sink, dataflow::EdgeKind::kForward).ok());

  dataflow::JobConfig config;
  config.checkpoint_interval_ms = 0;
  config.partitioner = &grid.partitioner();
  config.listener = &registry;
  config.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state::SQueryConfig{});
  auto job = dataflow::Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok()) << job.status();
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  auto ckpt = (*job)->TriggerCheckpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  ASSERT_TRUE((*job)->Stop().ok());

  query::QueryOptions options;
  options.isolation = state::IsolationLevel::kReadCommittedNoFailures;
  auto rows = service.Execute(
      "SELECT name, trace_id, span_id, parent_id FROM __spans "
      "WHERE category = 'checkpoint' AND trace_id = " +
          std::to_string(*ckpt) + " ORDER BY start_nanos",
      options);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  std::map<std::string, int> count_by_name;
  std::map<int64_t, std::string> name_by_span;
  std::map<int64_t, int64_t> parent_by_span;
  int64_t root_span = 0;
  for (const auto& row : rows->rows) {
    const std::string name = row[0].string_value();
    const int64_t span_id = row[2].AsInt64();
    const int64_t parent_id = row[3].AsInt64();
    ++count_by_name[name];
    name_by_span[span_id] = name;
    parent_by_span[span_id] = parent_id;
    if (name == "checkpoint") root_span = span_id;
  }
  // The full 2PC tree: one root, barrier alignment per stateful worker,
  // per-worker phase-1 capture, the aggregate phase-1 span, and phase 2.
  EXPECT_EQ(count_by_name["checkpoint"], 1);
  EXPECT_EQ(count_by_name["phase1"], 1);
  EXPECT_EQ(count_by_name["phase2"], 1);
  EXPECT_GE(count_by_name["align_wait"], 1);
  EXPECT_GE(count_by_name["phase1_capture"], 2);  // count has 2 instances
  ASSERT_NE(root_span, 0);
  // Every span hangs off the tree (parent is the root or another span of the
  // same trace).
  for (const auto& [span_id, parent_id] : parent_by_span) {
    if (span_id == root_span) {
      EXPECT_EQ(parent_id, 0);
      continue;
    }
    EXPECT_TRUE(parent_by_span.count(parent_id) == 1) << name_by_span[span_id];
  }
}

TEST_F(TraceTest, ConcurrentRecordAndExportHammer) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  recorders.reserve(4);
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&stop, t] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        trace::ScopedSpan root(trace::Category::kOther, "hammer_root");
        root.AddAttr("t", t);
        trace::ScopedSpan child(trace::Category::kOther, "hammer_child");
        child.AddAttr("i", ++i);
      }
    });
  }
  const std::string path =
      ::testing::TempDir() + "/trace_test_hammer.trace.json";
  for (int round = 0; round < 20; ++round) {
    (void)trace::SnapshotSpans();
    ASSERT_TRUE(trace::ExportChromeJson(path).ok());
  }
  stop.store(true);
  for (std::thread& t : recorders) t.join();
  const std::vector<trace::TraceSpan> spans = trace::SnapshotSpans();
  EXPECT_FALSE(spans.empty());
}

}  // namespace
}  // namespace sq
