// Property-based sweeps (TEST_P): randomized inputs checked against
// reference models, across a grid of parameters.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "common/histogram.h"
#include "common/queue.h"
#include "common/rng.h"
#include "dataflow/execution.h"
#include "dataflow/job_graph.h"
#include "dataflow/operators.h"
#include "dataflow/window.h"
#include "kv/grid.h"
#include "kv/snapshot_table.h"
#include "sql/eval.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"

namespace sq {
namespace {

using kv::Object;
using kv::Value;

// ---------------------------------------------------------------------------
// Property: the multi-version snapshot table behaves exactly like a map of
// (version -> reference state), for random workloads with deletions, in both
// full and incremental mode, including after retention compaction.

struct SnapshotModelParam {
  uint64_t seed;
  double delete_prob;
  bool incremental;
};

class SnapshotModelProperty
    : public ::testing::TestWithParam<SnapshotModelParam> {};

TEST_P(SnapshotModelProperty, MatchesReferenceModel) {
  const SnapshotModelParam param = GetParam();
  kv::Grid grid(kv::GridConfig{.node_count = 2, .partition_count = 8,
                               .backup_count = 0});
  state::SQueryConfig config;
  config.incremental = param.incremental;
  config.retained_versions = 100;  // keep everything during the first phase
  state::SQueryStateStore store(&grid, "op", 0, config);

  Rng rng(param.seed);
  std::map<int64_t, int64_t> reference;
  std::map<int64_t, std::map<int64_t, int64_t>> view_at;
  constexpr int64_t kCheckpoints = 8;
  for (int64_t ckpt = 1; ckpt <= kCheckpoints; ++ckpt) {
    for (int i = 0; i < 300; ++i) {
      const int64_t key = static_cast<int64_t>(rng.NextBounded(50));
      if (rng.NextBool(param.delete_prob)) {
        store.Remove(Value(key));
        reference.erase(key);
      } else {
        const int64_t v = static_cast<int64_t>(rng.NextBounded(100000));
        Object o;
        o.Set("v", Value(v));
        store.Put(Value(key), std::move(o));
        reference[key] = v;
      }
    }
    ASSERT_TRUE(store.SnapshotTo(ckpt).ok());
    view_at[ckpt] = reference;
  }

  kv::SnapshotTable* table = grid.GetSnapshotTable("snapshot_op");
  ASSERT_NE(table, nullptr);
  auto check_views = [&](int64_t from_ckpt) {
    for (int64_t ckpt = from_ckpt; ckpt <= kCheckpoints; ++ckpt) {
      std::map<int64_t, int64_t> actual;
      table->ScanAt(ckpt, [&actual](const Value& key, int64_t,
                                    const Object& value) {
        actual[key.AsInt64()] = value.Get("v").AsInt64();
      });
      EXPECT_EQ(actual, view_at[ckpt]) << "view at checkpoint " << ckpt;
      // Point lookups agree with the scan.
      for (int64_t key = 0; key < 50; ++key) {
        const auto got = table->GetAt(Value(key), ckpt);
        const auto it = view_at[ckpt].find(key);
        if (it == view_at[ckpt].end()) {
          EXPECT_FALSE(got.has_value()) << "key " << key << " @ " << ckpt;
        } else {
          ASSERT_TRUE(got.has_value()) << "key " << key << " @ " << ckpt;
          EXPECT_EQ(got->Get("v").AsInt64(), it->second);
        }
      }
    }
  };
  check_views(1);
  // Retention: compact away everything older than checkpoint 6; the
  // remaining views must be untouched.
  table->Compact(6);
  check_views(6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnapshotModelProperty,
    ::testing::Values(SnapshotModelParam{1, 0.0, false},
                      SnapshotModelParam{2, 0.0, true},
                      SnapshotModelParam{3, 0.2, false},
                      SnapshotModelParam{4, 0.2, true},
                      SnapshotModelParam{5, 0.5, true},
                      SnapshotModelParam{6, 0.5, false}));

// ---------------------------------------------------------------------------
// Property: exactly-once state under crash/recovery, across pipeline shapes.

struct RecoveryParam {
  int32_t source_parallelism;
  int32_t operator_parallelism;
  int failures;
};

class RecoveryProperty : public ::testing::TestWithParam<RecoveryParam> {};

TEST_P(RecoveryProperty, CountsAreExact) {
  const RecoveryParam param = GetParam();
  constexpr int64_t kRecords = 30000;
  constexpr int64_t kKeys = 11;

  kv::Grid grid(kv::GridConfig{.node_count = 2, .partition_count = 16,
                               .backup_count = 0});
  state::SnapshotRegistry registry(&grid, {.retained_versions = 2,
                                           .async_prune = false});
  dataflow::JobGraph graph;
  dataflow::GeneratorSource::Options options;
  options.total_records = kRecords;
  options.target_rate = 120000.0;
  const int32_t src = graph.AddSource(
      "src", param.source_parallelism,
      dataflow::MakeGeneratorSourceFactory(
          options, [](int64_t offset, dataflow::OperatorContext* ctx) {
            Object payload;
            payload.Set("n", Value(offset));
            return dataflow::Record::Data(Value(offset % kKeys),
                                          std::move(payload),
                                          ctx->NowNanos());
          }));
  const int32_t count = graph.AddOperator(
      "count", param.operator_parallelism,
      dataflow::MakeLambdaOperatorFactory(
          [](const dataflow::Record& r, dataflow::OperatorContext* ctx) {
            Object state = ctx->GetState(r.key).value_or(Object());
            state.Set("count", Value(state.Get("count").AsInt64() + 1));
            ctx->PutState(r.key, state);
            return Status::OK();
          }));
  ASSERT_TRUE(graph.Connect(src, count, dataflow::EdgeKind::kKeyed).ok());

  state::SQueryConfig state_config;
  state_config.parallelism = param.operator_parallelism;
  dataflow::JobConfig job_config;
  job_config.checkpoint_interval_ms = 25;
  job_config.partitioner = &grid.partitioner();
  job_config.listener = &registry;
  job_config.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);
  auto job = dataflow::Job::Create(graph, std::move(job_config));
  ASSERT_TRUE(job.ok()) << job.status();
  ASSERT_TRUE((*job)->Start().ok());
  for (int f = 0; f < param.failures; ++f) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE((*job)->InjectFailureAndRecover().ok());
  }
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  // Final live state must hold the exact distribution.
  kv::LiveMap* live = grid.GetLiveMap("count");
  ASSERT_NE(live, nullptr);
  int64_t total = 0;
  for (int64_t k = 0; k < kKeys; ++k) {
    const auto state = live->Get(Value(k));
    ASSERT_TRUE(state.has_value()) << "key " << k;
    const int64_t expected = kRecords / kKeys + (k < kRecords % kKeys ? 1 : 0);
    EXPECT_EQ(state->Get("count").AsInt64(), expected) << "key " << k;
    total += state->Get("count").AsInt64();
  }
  EXPECT_EQ(total, kRecords);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecoveryProperty,
                         ::testing::Values(RecoveryParam{1, 1, 1},
                                           RecoveryParam{1, 2, 2},
                                           RecoveryParam{2, 2, 1},
                                           RecoveryParam{2, 3, 2},
                                           RecoveryParam{3, 2, 3}));

// ---------------------------------------------------------------------------
// Property: tumbling-window aggregates equal a reference computation for
// random in-order event streams, across window sizes and key counts.

struct WindowParam {
  uint64_t seed;
  int64_t window_micros;
  int64_t keys;
};

class WindowProperty : public ::testing::TestWithParam<WindowParam> {};

TEST_P(WindowProperty, MatchesReference) {
  const WindowParam param = GetParam();
  constexpr int64_t kEvents = 3000;

  // Deterministic event stream: time strictly increasing, random values.
  struct Event {
    int64_t key;
    int64_t time;
    int64_t value;
  };
  std::vector<Event> events;
  {
    Rng rng(param.seed);
    int64_t t = 0;
    for (int64_t i = 0; i < kEvents; ++i) {
      t += static_cast<int64_t>(rng.NextBounded(50)) + 1;
      events.push_back(Event{
          static_cast<int64_t>(rng.NextBounded(param.keys)), t,
          static_cast<int64_t>(rng.NextBounded(1000))});
    }
  }
  // Reference: (key, window start) -> (count, sum).
  std::map<std::pair<int64_t, int64_t>, std::pair<int64_t, int64_t>> expect;
  for (const Event& e : events) {
    auto& slot =
        expect[{e.key, e.time / param.window_micros * param.window_micros}];
    slot.first += 1;
    slot.second += e.value;
  }

  dataflow::JobGraph graph;
  dataflow::CollectingSink::Collector collector;
  dataflow::GeneratorSource::Options options;
  options.total_records = kEvents;
  auto shared_events = std::make_shared<std::vector<Event>>(events);
  const int32_t src = graph.AddSource(
      "src", 1,
      dataflow::MakeGeneratorSourceFactory(
          options,
          [shared_events](int64_t offset, dataflow::OperatorContext* ctx) {
            const Event& e = (*shared_events)[offset];
            Object payload;
            payload.Set("eventTime", Value(e.time));
            payload.Set("value", Value(e.value));
            return dataflow::Record::Data(Value(e.key), std::move(payload),
                                          ctx->NowNanos());
          }));
  dataflow::TumblingWindowOperator::Options window_options;
  window_options.window_size_micros = param.window_micros;
  const int32_t window = graph.AddOperator(
      "window", 2, dataflow::MakeTumblingWindowFactory(window_options));
  const int32_t sink = graph.AddSink(
      "sink", 1, dataflow::MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, window, dataflow::EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(window, sink, dataflow::EdgeKind::kForward).ok());
  dataflow::JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = dataflow::Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  std::map<std::pair<int64_t, int64_t>, std::pair<int64_t, int64_t>> actual;
  for (const dataflow::Record& r : collector.Snapshot()) {
    actual[{r.key.AsInt64(), r.payload.Get("windowStart").AsInt64()}] = {
        r.payload.Get("count").AsInt64(),
        static_cast<int64_t>(r.payload.Get("sum").AsDouble())};
  }
  EXPECT_EQ(actual, expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WindowProperty,
                         ::testing::Values(WindowParam{1, 1000, 1},
                                           WindowParam{2, 1000, 8},
                                           WindowParam{3, 300, 5},
                                           WindowParam{4, 5000, 16}));

// ---------------------------------------------------------------------------
// Property: for random tables and random predicates, the SQL executor's
// WHERE filtering equals direct expression evaluation over all rows.

class SqlFilterProperty : public ::testing::TestWithParam<uint64_t> {};

class MemResolver : public sql::TableResolver {
 public:
  std::vector<Object> rows;
  Result<std::vector<Object>> ScanTable(const std::string&,
                                        std::optional<int64_t>) override {
    return rows;
  }
};

TEST_P(SqlFilterProperty, WhereMatchesDirectEvaluation) {
  Rng rng(GetParam());
  MemResolver resolver;
  for (int64_t i = 0; i < 200; ++i) {
    Object row;
    row.Set("key", Value(i));
    row.Set("a", Value(static_cast<int64_t>(rng.NextBounded(20))));
    row.Set("b", Value(rng.NextDouble() * 10.0));
    row.Set("s", Value(std::string(rng.NextBool(0.5) ? "x" : "y")));
    resolver.rows.push_back(std::move(row));
  }
  const char* kPredicates[] = {
      "a = 5",
      "a != 5 AND b < 5.0",
      "a < 10 OR s = 'x'",
      "NOT (a >= 10) AND (s = 'y' OR b > 2.5)",
      "a + 1 <= 7",
      "a * 2 > b",
      "b / 2.0 >= 1.0 AND a <= 15",
  };
  for (const char* predicate : kPredicates) {
    const std::string sql =
        std::string("SELECT key FROM t WHERE ") + predicate;
    auto result = sql::ExecuteSql(sql, &resolver, sql::ExecOptions{});
    ASSERT_TRUE(result.ok()) << result.status() << " for " << sql;
    // Reference: evaluate the parsed predicate on every row directly.
    auto stmt = sql::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok());
    std::vector<int64_t> expected;
    for (const Object& row : resolver.rows) {
      auto verdict = sql::EvalScalar(*(*stmt)->where, row, sql::EvalContext{});
      ASSERT_TRUE(verdict.ok());
      if (verdict->Truthy()) expected.push_back(row.Get("key").AsInt64());
    }
    std::vector<int64_t> actual;
    for (const auto& row : result->rows) actual.push_back(row[0].AsInt64());
    std::sort(actual.begin(), actual.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(actual, expected) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SqlFilterProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Property: SQL aggregates equal reference aggregation for random groups.

class SqlAggregateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlAggregateProperty, GroupByMatchesReference) {
  Rng rng(GetParam());
  MemResolver resolver;
  std::map<int64_t, std::vector<int64_t>> groups;
  for (int64_t i = 0; i < 500; ++i) {
    const int64_t g = static_cast<int64_t>(rng.NextBounded(7));
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1000));
    Object row;
    row.Set("g", Value(g));
    row.Set("v", Value(v));
    resolver.rows.push_back(std::move(row));
    groups[g].push_back(v);
  }
  auto result = sql::ExecuteSql(
      "SELECT g, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi, "
      "AVG(v) AS m FROM t GROUP BY g ORDER BY g",
      &resolver, sql::ExecOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->RowCount(), groups.size());
  size_t row = 0;
  for (const auto& [g, values] : groups) {
    EXPECT_EQ(result->At(row, "g").AsInt64(), g);
    EXPECT_EQ(result->At(row, "n").AsInt64(),
              static_cast<int64_t>(values.size()));
    int64_t sum = 0;
    int64_t lo = values[0];
    int64_t hi = values[0];
    for (int64_t v : values) {
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_EQ(result->At(row, "s").AsInt64(), sum);
    EXPECT_EQ(result->At(row, "lo").AsInt64(), lo);
    EXPECT_EQ(result->At(row, "hi").AsInt64(), hi);
    EXPECT_NEAR(result->At(row, "m").AsDouble(),
                static_cast<double>(sum) / values.size(), 1e-9);
    ++row;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SqlAggregateProperty,
                         ::testing::Values(7, 17, 27));

// ---------------------------------------------------------------------------
// Property: histogram percentile error stays within the log-linear bucket
// precision for different distributions.

class HistogramProperty : public ::testing::TestWithParam<int> {};

TEST_P(HistogramProperty, PercentileErrorBounded) {
  Rng rng(99 + GetParam());
  Histogram h;
  std::vector<int64_t> values;
  for (int i = 0; i < 50000; ++i) {
    int64_t v = 0;
    switch (GetParam()) {
      case 0:  // uniform
        v = static_cast<int64_t>(rng.NextBounded(10'000'000)) + 1;
        break;
      case 1:  // heavy tail: x^4 shaping
      {
        const double u = rng.NextDouble();
        v = static_cast<int64_t>(u * u * u * u * 1e9) + 1;
        break;
      }
      case 2:  // bimodal
        v = rng.NextBool(0.9)
                ? static_cast<int64_t>(rng.NextBounded(1000)) + 1
                : static_cast<int64_t>(rng.NextBounded(100'000'000)) + 1;
        break;
      default:
        v = 1;
    }
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const int64_t exact =
        values[static_cast<size_t>(p / 100.0 * values.size()) - 1];
    const int64_t approx = h.ValueAtPercentile(p);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.07 * static_cast<double>(exact) + 2.0)
        << "p" << p << " dist " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramProperty,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// Property: the partitioner balances keys across partitions for several
// partition counts and key shapes.

struct PartitionParam {
  int32_t partitions;
  bool string_keys;
};

class PartitionerProperty : public ::testing::TestWithParam<PartitionParam> {
};

TEST_P(PartitionerProperty, KeysSpreadEvenly) {
  const PartitionParam param = GetParam();
  kv::Partitioner partitioner(param.partitions);
  std::vector<int64_t> counts(param.partitions, 0);
  constexpr int64_t kKeys = 40000;
  for (int64_t i = 0; i < kKeys; ++i) {
    const Value key = param.string_keys
                          ? Value("entity-" + std::to_string(i))
                          : Value(i);
    ++counts[partitioner.PartitionOf(key)];
  }
  const double expected =
      static_cast<double>(kKeys) / param.partitions;
  for (int32_t p = 0; p < param.partitions; ++p) {
    EXPECT_GT(counts[p], expected * 0.7) << "partition " << p;
    EXPECT_LT(counts[p], expected * 1.3) << "partition " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionerProperty,
                         ::testing::Values(PartitionParam{8, false},
                                           PartitionParam{8, true},
                                           PartitionParam{71, false},
                                           PartitionParam{271, true}));

// ---------------------------------------------------------------------------
// Property: the blocking queue delivers every item exactly once under
// different producer/consumer mixes.

struct QueueParam {
  int producers;
  int consumers;
};

class QueueProperty : public ::testing::TestWithParam<QueueParam> {};

TEST_P(QueueProperty, ExactlyOnceDelivery) {
  const QueueParam param = GetParam();
  BlockingQueue<int64_t> queue(64);
  constexpr int64_t kPerProducer = 20000;
  std::atomic<int64_t> delivered_sum{0};
  std::atomic<int64_t> delivered_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < param.consumers; ++c) {
    threads.emplace_back([&queue, &delivered_sum, &delivered_count] {
      while (auto v = queue.Pop()) {
        delivered_sum.fetch_add(*v);
        delivered_count.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < param.producers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int64_t i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : threads) t.join();
  const int64_t n = param.producers * kPerProducer;
  EXPECT_EQ(delivered_count.load(), n);
  EXPECT_EQ(delivered_sum.load(), n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QueueProperty,
                         ::testing::Values(QueueParam{1, 1}, QueueParam{1, 4},
                                           QueueParam{4, 1},
                                           QueueParam{3, 3}));

}  // namespace
}  // namespace sq
