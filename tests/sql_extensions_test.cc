// Tests for the SQL dialect extensions beyond the paper's minimum:
// IN / NOT IN, BETWEEN, IS [NOT] NULL, HAVING, COUNT(DISTINCT ...).

#include <gtest/gtest.h>

#include <map>

#include "sql/executor.h"
#include "sql/parser.h"

namespace sq::sql {
namespace {

using kv::Object;
using kv::Value;

class FakeResolver : public TableResolver {
 public:
  std::map<std::string, std::vector<Object>> tables;

  Result<std::vector<Object>> ScanTable(
      const std::string& table, std::optional<int64_t>) override {
    auto it = tables.find(table);
    if (it == tables.end()) return Status::NotFound("no table " + table);
    return it->second;
  }
};

class SqlExtensionsTest : public ::testing::Test {
 protected:
  SqlExtensionsTest() {
    for (int64_t i = 0; i < 10; ++i) {
      Object row;
      row.Set("key", Value(i));
      row.Set("zone", Value("zone-" + std::to_string(i % 3)));
      row.Set("v", Value(i * 10));
      if (i % 4 != 0) {
        row.Set("optional", Value(i));  // absent (NULL) for multiples of 4
      }
      resolver_.tables["t"].push_back(std::move(row));
    }
  }

  ResultSet MustExecute(const std::string& sql) {
    auto result = ExecuteSql(sql, &resolver_, ExecOptions{});
    EXPECT_TRUE(result.ok()) << result.status() << "\n" << sql;
    return result.ok() ? *result : ResultSet{};
  }

  FakeResolver resolver_;
};

TEST_F(SqlExtensionsTest, InList) {
  ResultSet r = MustExecute("SELECT key FROM t WHERE key IN (1, 3, 5)");
  EXPECT_EQ(r.RowCount(), 3u);
  ResultSet s =
      MustExecute("SELECT key FROM t WHERE zone IN ('zone-0', 'zone-1')");
  EXPECT_EQ(s.RowCount(), 7u);
}

TEST_F(SqlExtensionsTest, NotInList) {
  ResultSet r = MustExecute("SELECT key FROM t WHERE key NOT IN (1, 3, 5)");
  EXPECT_EQ(r.RowCount(), 7u);
}

TEST_F(SqlExtensionsTest, Between) {
  ResultSet r = MustExecute("SELECT key FROM t WHERE key BETWEEN 2 AND 5");
  EXPECT_EQ(r.RowCount(), 4u);
  ResultSet s =
      MustExecute("SELECT key FROM t WHERE key NOT BETWEEN 2 AND 5");
  EXPECT_EQ(s.RowCount(), 6u);
  // BETWEEN binds tighter than a surrounding AND.
  ResultSet both = MustExecute(
      "SELECT key FROM t WHERE key BETWEEN 2 AND 5 AND v > 20");
  EXPECT_EQ(both.RowCount(), 3u);
}

TEST_F(SqlExtensionsTest, IsNull) {
  ResultSet r = MustExecute("SELECT key FROM t WHERE optional IS NULL");
  EXPECT_EQ(r.RowCount(), 3u);  // keys 0, 4, 8
  ResultSet s = MustExecute("SELECT key FROM t WHERE optional IS NOT NULL");
  EXPECT_EQ(s.RowCount(), 7u);
}

TEST_F(SqlExtensionsTest, Having) {
  // zone-0 has 4 rows (0,3,6,9); zone-1 and zone-2 have 3 each.
  ResultSet r = MustExecute(
      "SELECT zone, COUNT(*) AS n FROM t GROUP BY zone HAVING COUNT(*) > 3");
  ASSERT_EQ(r.RowCount(), 1u);
  EXPECT_EQ(r.At(0, "zone").ToString(), "zone-0");
  EXPECT_EQ(r.At(0, "n").AsInt64(), 4);
  // HAVING over an aggregate not in the SELECT list.
  ResultSet s = MustExecute(
      "SELECT zone FROM t GROUP BY zone HAVING SUM(v) >= 150");
  EXPECT_EQ(s.RowCount(), 2u);
}

TEST_F(SqlExtensionsTest, HavingWithoutGroupingIsRejected) {
  auto result =
      ExecuteSql("SELECT key FROM t HAVING key > 1", &resolver_, {});
  EXPECT_FALSE(result.ok());
}

TEST_F(SqlExtensionsTest, CountDistinct) {
  ResultSet r = MustExecute(
      "SELECT COUNT(DISTINCT zone) AS zones, COUNT(zone) AS all_rows FROM t");
  ASSERT_EQ(r.RowCount(), 1u);
  EXPECT_EQ(r.At(0, "zones").AsInt64(), 3);
  EXPECT_EQ(r.At(0, "all_rows").AsInt64(), 10);
}

TEST_F(SqlExtensionsTest, SumDistinct) {
  // v values 0..90; distinct sum equals plain sum here, so craft repeats.
  resolver_.tables["d"].clear();
  for (int64_t v : {5, 5, 7, 7, 9}) {
    Object row;
    row.Set("v", Value(v));
    resolver_.tables["d"].push_back(std::move(row));
  }
  ResultSet r = MustExecute(
      "SELECT SUM(DISTINCT v) AS ds, SUM(v) AS s FROM d");
  EXPECT_EQ(r.At(0, "ds").AsInt64(), 21);
  EXPECT_EQ(r.At(0, "s").AsInt64(), 33);
}

TEST_F(SqlExtensionsTest, ParserRendersNewFormsRoundTrip) {
  auto stmt = ParseSelect(
      "SELECT COUNT(DISTINCT zone) FROM t WHERE optional IS NOT NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->items[0].expr->ToString(), "COUNT(DISTINCT zone)");
  EXPECT_EQ((*stmt)->where->ToString(), "optional IS NOT NULL");
}

TEST_F(SqlExtensionsTest, MalformedExtensionsAreRejected) {
  EXPECT_FALSE(ParseSelect("SELECT key FROM t WHERE key IN").ok());
  EXPECT_FALSE(ParseSelect("SELECT key FROM t WHERE key IN ()").ok());
  EXPECT_FALSE(ParseSelect("SELECT key FROM t WHERE key BETWEEN 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT key FROM t WHERE key IS").ok());
  EXPECT_FALSE(ParseSelect("SELECT key FROM t WHERE key NOT 5").ok());
}

}  // namespace
}  // namespace sq::sql
