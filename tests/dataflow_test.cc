#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "dataflow/execution.h"
#include "dataflow/job_graph.h"
#include "dataflow/operators.h"

namespace sq::dataflow {
namespace {

using kv::Object;
using kv::Value;

// Source producing offsets [0, n) keyed by offset % keys.
OperatorFactory NumbersSource(int64_t n, int64_t keys, double rate = 0.0) {
  GeneratorSource::Options options;
  options.total_records = n;
  options.target_rate = rate;
  return MakeGeneratorSourceFactory(
      options, [keys](int64_t offset, OperatorContext* ctx) {
        Object payload;
        payload.Set("n", Value(offset));
        return Record::Data(Value(offset % keys), std::move(payload),
                            ctx->NowNanos());
      });
}

// Keyed counter: state[key].count += 1, emits the running count.
OperatorFactory CountOperator() {
  return MakeLambdaOperatorFactory(
      [](const Record& r, OperatorContext* ctx) {
        Object state = ctx->GetState(r.key).value_or(Object());
        const int64_t count = state.Get("count").AsInt64() + 1;
        state.Set("count", Value(count));
        ctx->PutState(r.key, state);
        Object out;
        out.Set("count", Value(count));
        ctx->Emit(Record::Data(r.key, std::move(out), r.source_nanos));
        return Status::OK();
      });
}

TEST(JobGraphTest, ValidatesEmptyGraph) {
  JobGraph graph;
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(JobGraphTest, ValidatesDuplicateNames) {
  JobGraph graph;
  graph.AddSource("v", 1, NumbersSource(1, 1));
  const int32_t b = graph.AddOperator("v", 1, CountOperator());
  ASSERT_TRUE(graph.Connect(0, b).ok());
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(JobGraphTest, RejectsSourceWithInputs) {
  JobGraph graph;
  const int32_t a = graph.AddSource("a", 1, NumbersSource(1, 1));
  const int32_t b = graph.AddSource("b", 1, NumbersSource(1, 1));
  EXPECT_FALSE(graph.Connect(a, b).ok());
}

TEST(JobGraphTest, RejectsDanglingOperator) {
  JobGraph graph;
  graph.AddSource("a", 1, NumbersSource(1, 1));
  graph.AddOperator("b", 1, CountOperator());
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(JobGraphTest, AcceptsDiamond) {
  JobGraph graph;
  const int32_t src = graph.AddSource("src", 1, NumbersSource(1, 1));
  const int32_t left = graph.AddOperator("left", 1, CountOperator());
  const int32_t right = graph.AddOperator("right", 1, CountOperator());
  CollectingSink::Collector collector;
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, left).ok());
  ASSERT_TRUE(graph.Connect(src, right).ok());
  ASSERT_TRUE(graph.Connect(left, sink).ok());
  ASSERT_TRUE(graph.Connect(right, sink).ok());
  EXPECT_TRUE(graph.Validate().ok());
}

// End-to-end: counts per key must match the generated distribution.
TEST(ExecutionTest, KeyedCountPipeline) {
  constexpr int64_t kRecords = 5000;
  constexpr int64_t kKeys = 17;

  JobGraph graph;
  CollectingSink::Collector collector;
  const int32_t src = graph.AddSource("src", 2, NumbersSource(kRecords, kKeys));
  const int32_t count = graph.AddOperator("count", 2, CountOperator());
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, count, EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(count, sink, EdgeKind::kForward).ok());

  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok()) << job.status();
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  std::map<int64_t, int64_t> max_count;
  for (const Record& r : collector.Snapshot()) {
    auto& slot = max_count[r.key.AsInt64()];
    slot = std::max(slot, r.payload.Get("count").AsInt64());
  }
  ASSERT_EQ(max_count.size(), static_cast<size_t>(kKeys));
  for (int64_t k = 0; k < kKeys; ++k) {
    const int64_t expected = kRecords / kKeys + (k < kRecords % kKeys ? 1 : 0);
    EXPECT_EQ(max_count[k], expected) << "key " << k;
  }
  EXPECT_EQ((*job)->ProcessedCount("count"), kRecords);
  EXPECT_EQ((*job)->ProcessedCount("sink"), kRecords);
}

TEST(ExecutionTest, ManualCheckpointCommits) {
  JobGraph graph;
  CollectingSink::Collector collector;
  const int32_t src =
      graph.AddSource("src", 1, NumbersSource(1 << 22, 8, /*rate=*/50000.0));
  const int32_t count = graph.AddOperator("count", 2, CountOperator());
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, count, EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(count, sink, EdgeKind::kForward).ok());

  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto first = (*job)->TriggerCheckpoint();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, 1);
  auto second = (*job)->TriggerCheckpoint();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 2);
  EXPECT_EQ((*job)->latest_committed_checkpoint(), 2);
  EXPECT_EQ((*job)->checkpoint_stats().committed.load(), 2);
  EXPECT_EQ((*job)->checkpoint_stats().phase2_latency.count(), 2);
  ASSERT_TRUE((*job)->Stop().ok());
}

// Exactly-once state updates: after a crash + rollback recovery the final
// per-key counts equal the input distribution, with no double counting.
TEST(ExecutionTest, RecoveryIsExactlyOnceOnState) {
  constexpr int64_t kRecords = 40000;
  constexpr int64_t kKeys = 13;

  JobGraph graph;
  CollectingSink::Collector collector;
  const int32_t src = graph.AddSource(
      "src", 2, NumbersSource(kRecords, kKeys, /*rate=*/150000.0));
  const int32_t count = graph.AddOperator("count", 2, CountOperator());
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, count, EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(count, sink, EdgeKind::kForward).ok());

  JobConfig config;
  config.checkpoint_interval_ms = 20;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_TRUE((*job)->InjectFailureAndRecover().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE((*job)->InjectFailureAndRecover().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  // The sink sees at-least-once output, but the *maximum* per-key count —
  // the operator state — must be exact.
  std::map<int64_t, int64_t> max_count;
  for (const Record& r : collector.Snapshot()) {
    auto& slot = max_count[r.key.AsInt64()];
    slot = std::max(slot, r.payload.Get("count").AsInt64());
  }
  for (int64_t k = 0; k < kKeys; ++k) {
    const int64_t expected = kRecords / kKeys + (k < kRecords % kKeys ? 1 : 0);
    EXPECT_EQ(max_count[k], expected) << "key " << k;
  }
}

// The 2PC abort path: a stalled operator makes phase 1 exceed the
// checkpoint timeout; the coordinator aborts, notifies the listener, and a
// later checkpoint (after the stall clears) commits with a fresh id.
TEST(ExecutionTest, CheckpointTimesOutAndAborts) {
  struct AbortListener : public CheckpointListener {
    std::atomic<int64_t> aborted{0};
    std::atomic<int64_t> committed{0};
    void OnCheckpointAborted(int64_t) override { aborted.fetch_add(1); }
    void OnCheckpointCommitted(int64_t) override { committed.fetch_add(1); }
  };
  AbortListener listener;
  auto stall_remaining = std::make_shared<std::atomic<int>>(3);

  JobGraph graph;
  const int32_t src = graph.AddSource("src", 1, NumbersSource(-1, 4, 2000.0));
  const int32_t slow = graph.AddOperator(
      "slow", 1,
      MakeLambdaOperatorFactory(
          [stall_remaining](const Record&, OperatorContext*) {
            if (stall_remaining->fetch_sub(1) > 0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(150));
            }
            return Status::OK();
          }));
  EXPECT_TRUE(graph.Connect(src, slow, EdgeKind::kKeyed).ok());

  JobConfig config;
  config.checkpoint_interval_ms = 0;
  config.checkpoint_timeout_ms = 80;  // < the 150ms stall
  config.listener = &listener;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  auto first = (*job)->TriggerCheckpoint();
  EXPECT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsAborted()) << first.status();
  EXPECT_EQ(listener.aborted.load(), 1);
  EXPECT_EQ((*job)->latest_committed_checkpoint(), 0);

  // Once the stall clears, checkpoints succeed again with a fresh id.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  auto second = (*job)->TriggerCheckpoint();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_GT(*second, 1);
  EXPECT_EQ(listener.committed.load(), 1);
  EXPECT_EQ((*job)->checkpoint_stats().aborted.load(), 1);
  ASSERT_TRUE((*job)->Stop().ok());
}

// Regression: a failing phase 1 must abort the checkpoint, not commit it.
// PerformSnapshot used to acknowledge the worker as prepared even when
// OnCheckpoint/SnapshotTo failed, so the coordinator committed a checkpoint
// that silently lost that worker's state.
TEST(ExecutionTest, FailedPhase1AbortsInsteadOfCommitting) {
  struct AbortListener : public CheckpointListener {
    std::atomic<int64_t> aborted{0};
    std::atomic<int64_t> committed{0};
    void OnCheckpointAborted(int64_t) override { aborted.fetch_add(1); }
    void OnCheckpointCommitted(int64_t) override { committed.fetch_add(1); }
  };
  AbortListener listener;
  auto faulty = std::make_shared<std::atomic<bool>>(true);

  JobGraph graph;
  const int32_t src = graph.AddSource("src", 1, NumbersSource(-1, 4, 2000.0));
  const int32_t op = graph.AddOperator(
      "faulty", 1,
      MakeLambdaOperatorFactory(
          [](const Record&, OperatorContext*) { return Status::OK(); },
          [faulty](int64_t, OperatorContext*) {
            return faulty->load() ? Status::Internal("injected snapshot fault")
                                  : Status::OK();
          }));
  EXPECT_TRUE(graph.Connect(src, op, EdgeKind::kKeyed).ok());

  JobConfig config;
  config.checkpoint_interval_ms = 0;
  config.listener = &listener;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  auto first = (*job)->TriggerCheckpoint();
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsAborted()) << first.status();
  EXPECT_NE(first.status().message().find("injected snapshot fault"),
            std::string::npos)
      << first.status();
  EXPECT_EQ(listener.aborted.load(), 1);
  EXPECT_EQ(listener.committed.load(), 0);
  EXPECT_EQ((*job)->latest_committed_checkpoint(), 0);

  // With the fault cleared the pipeline is still healthy: the next
  // checkpoint commits (the abort released everything it held).
  faulty->store(false);
  auto second = (*job)->TriggerCheckpoint();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(listener.committed.load(), 1);
  EXPECT_EQ((*job)->latest_committed_checkpoint(), *second);
  ASSERT_TRUE((*job)->Stop().ok());
}

TEST(ExecutionTest, StopInterruptsUnboundedJob) {
  JobGraph graph;
  CollectingSink::Collector collector;
  const int32_t src = graph.AddSource("src", 1, NumbersSource(-1, 4));
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, sink, EdgeKind::kKeyed).ok());

  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE((*job)->Stop().ok());
  EXPECT_GT(collector.Size(), 0u);
}

}  // namespace
}  // namespace sq::dataflow
