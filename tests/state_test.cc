#include <gtest/gtest.h>

#include <map>

#include "kv/grid.h"
#include "state/isolation.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"

namespace sq::state {
namespace {

using kv::Grid;
using kv::GridConfig;
using kv::Object;
using kv::Value;

Object Obj(int64_t v) {
  Object o;
  o.Set("v", Value(v));
  return o;
}

class StateStoreTest : public ::testing::Test {
 protected:
  StateStoreTest()
      : grid_(GridConfig{.node_count = 2, .partition_count = 8,
                         .backup_count = 0}) {}

  Grid grid_;
};

TEST_F(StateStoreTest, TableNaming) {
  EXPECT_EQ(LiveTableName("stateful map"), "statefulmap");
  EXPECT_EQ(SnapshotTableName("stateful map"), "snapshot_statefulmap");
  EXPECT_EQ(SnapshotTableName("average"), "snapshot_average");
}

TEST_F(StateStoreTest, LiveMirroringOnEveryUpdate) {
  SQueryStateStore store(&grid_, "average", 0, SQueryConfig{});
  store.Put(Value(int64_t{1}), Obj(10));
  store.Put(Value(int64_t{2}), Obj(20));
  kv::LiveMap* live = grid_.GetLiveMap("average");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->Size(), 2u);
  EXPECT_EQ(live->Get(Value(int64_t{1}))->Get("v").AsInt64(), 10);
  store.Put(Value(int64_t{1}), Obj(11));
  EXPECT_EQ(live->Get(Value(int64_t{1}))->Get("v").AsInt64(), 11);
  store.Remove(Value(int64_t{1}));
  EXPECT_FALSE(live->Get(Value(int64_t{1})).has_value());
}

TEST_F(StateStoreTest, LiveDisabledWritesNothing) {
  SQueryConfig config;
  config.live_enabled = false;
  SQueryStateStore store(&grid_, "average", 0, config);
  store.Put(Value(int64_t{1}), Obj(10));
  EXPECT_EQ(grid_.GetLiveMap("average"), nullptr);
}

TEST_F(StateStoreTest, FullSnapshotWritesWholeState) {
  SQueryStateStats stats;
  SQueryStateStore store(&grid_, "op", 0, SQueryConfig{}, &stats);
  for (int64_t k = 0; k < 10; ++k) store.Put(Value(k), Obj(k));
  ASSERT_TRUE(store.SnapshotTo(1).ok());
  EXPECT_EQ(store.last_snapshot_entries(), 10u);
  // No changes at all: a full snapshot still rewrites everything.
  ASSERT_TRUE(store.SnapshotTo(2).ok());
  EXPECT_EQ(store.last_snapshot_entries(), 10u);
  EXPECT_EQ(stats.snapshot_entries_written.load(), 20);
  kv::SnapshotTable* table = grid_.GetSnapshotTable("snapshot_op");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->EntryCount(), 20u);
}

TEST_F(StateStoreTest, IncrementalSnapshotWritesOnlyDeltas) {
  SQueryConfig config;
  config.incremental = true;
  SQueryStateStore store(&grid_, "op", 0, config);
  for (int64_t k = 0; k < 10; ++k) store.Put(Value(k), Obj(k));
  ASSERT_TRUE(store.SnapshotTo(1).ok());
  EXPECT_EQ(store.last_snapshot_entries(), 10u);  // first delta = everything
  store.Put(Value(int64_t{3}), Obj(33));
  ASSERT_TRUE(store.SnapshotTo(2).ok());
  EXPECT_EQ(store.last_snapshot_entries(), 1u);
  ASSERT_TRUE(store.SnapshotTo(3).ok());
  EXPECT_EQ(store.last_snapshot_entries(), 0u);  // nothing changed

  // The reconstructed views must match what a full snapshot would show.
  kv::SnapshotTable* table = grid_.GetSnapshotTable("snapshot_op");
  EXPECT_EQ(table->GetAt(Value(int64_t{3}), 1)->Get("v").AsInt64(), 3);
  EXPECT_EQ(table->GetAt(Value(int64_t{3}), 2)->Get("v").AsInt64(), 33);
  EXPECT_EQ(table->GetAt(Value(int64_t{3}), 3)->Get("v").AsInt64(), 33);
  EXPECT_EQ(table->GetAt(Value(int64_t{5}), 3)->Get("v").AsInt64(), 5);
}

TEST_F(StateStoreTest, DeletionsWriteTombstones) {
  SQueryConfig config;
  config.incremental = true;
  SQueryStateStore store(&grid_, "op", 0, config);
  store.Put(Value(int64_t{1}), Obj(1));
  ASSERT_TRUE(store.SnapshotTo(1).ok());
  store.Remove(Value(int64_t{1}));
  ASSERT_TRUE(store.SnapshotTo(2).ok());
  kv::SnapshotTable* table = grid_.GetSnapshotTable("snapshot_op");
  EXPECT_TRUE(table->GetAt(Value(int64_t{1}), 1).has_value());
  EXPECT_FALSE(table->GetAt(Value(int64_t{1}), 2).has_value());
}

TEST_F(StateStoreTest, RestoreRollsBackLocalAndLiveState) {
  SQueryStateStore store(&grid_, "op", 0, SQueryConfig{});
  store.Put(Value(int64_t{1}), Obj(100));
  ASSERT_TRUE(store.SnapshotTo(1).ok());
  store.Put(Value(int64_t{1}), Obj(200));
  store.Put(Value(int64_t{2}), Obj(300));
  ASSERT_TRUE(store.RestoreFrom(1).ok());
  EXPECT_EQ(store.Get(Value(int64_t{1}))->Get("v").AsInt64(), 100);
  EXPECT_FALSE(store.Get(Value(int64_t{2})).has_value());
  kv::LiveMap* live = grid_.GetLiveMap("op");
  EXPECT_EQ(live->Get(Value(int64_t{1}))->Get("v").AsInt64(), 100);
  EXPECT_FALSE(live->Get(Value(int64_t{2})).has_value());
  // Restore to "before any checkpoint" empties everything.
  ASSERT_TRUE(store.RestoreFrom(0).ok());
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_EQ(live->Size(), 0u);
}

TEST_F(StateStoreTest, RestoreFromTableRebuildsInstanceState) {
  // Two instances of a keyed vertex share the table; each owns the
  // partitions p with p % 2 == instance.
  SQueryConfig config;
  config.parallelism = 2;
  SQueryStateStore store0(&grid_, "op", 0, config);
  SQueryStateStore store1(&grid_, "op", 1, config);
  const auto& part = grid_.partitioner();
  for (int64_t k = 0; k < 40; ++k) {
    const int32_t instance = part.PartitionOf(Value(k)) % 2;
    (instance == 0 ? store0 : store1).Put(Value(k), Obj(k));
  }
  ASSERT_TRUE(store0.SnapshotTo(1).ok());
  ASSERT_TRUE(store1.SnapshotTo(1).ok());
  const size_t size0 = store0.Size();
  ASSERT_GT(size0, 0u);

  // Simulate losing instance 0's memory and rebuilding from the table.
  store0.Clear();
  EXPECT_EQ(store0.Size(), 0u);
  ASSERT_TRUE(store0.RestoreFromTable(1).ok());
  EXPECT_EQ(store0.Size(), size0);
  for (int64_t k = 0; k < 40; ++k) {
    if (part.PartitionOf(Value(k)) % 2 == 0) {
      ASSERT_TRUE(store0.Get(Value(k)).has_value()) << k;
      EXPECT_EQ(store0.Get(Value(k))->Get("v").AsInt64(), k);
    } else {
      EXPECT_FALSE(store0.Get(Value(k)).has_value()) << k;
    }
  }
}

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest()
      : grid_(GridConfig{.node_count = 2, .partition_count = 8,
                         .backup_count = 0}) {}

  Grid grid_;
};

TEST_F(RegistryTest, PublishesLatestAtomically) {
  SnapshotRegistry registry(&grid_, {.retained_versions = 2,
                                     .async_prune = false});
  EXPECT_EQ(registry.latest_committed(), 0);
  EXPECT_FALSE(registry.Resolve(std::nullopt).ok());
  registry.OnCheckpointCommitted(1);
  EXPECT_EQ(registry.latest_committed(), 1);
  EXPECT_EQ(*registry.Resolve(std::nullopt), 1);
  registry.OnCheckpointCommitted(2);
  EXPECT_EQ(*registry.Resolve(std::nullopt), 2);
  EXPECT_EQ(*registry.Resolve(1), 1);
}

TEST_F(RegistryTest, RetentionWindowIsEnforced) {
  SnapshotRegistry registry(&grid_, {.retained_versions = 2,
                                     .async_prune = false});
  registry.OnCheckpointCommitted(1);
  registry.OnCheckpointCommitted(2);
  registry.OnCheckpointCommitted(3);
  EXPECT_EQ(registry.RetainedVersions(), (std::vector<int64_t>{2, 3}));
  EXPECT_TRUE(registry.IsQueryable(2));
  EXPECT_FALSE(registry.IsQueryable(1));
  EXPECT_FALSE(registry.Resolve(1).ok());
  EXPECT_TRUE(registry.Resolve(3).ok());
}

TEST_F(RegistryTest, CommitPrunesTablesToRetentionFloor) {
  SQueryConfig config;
  SQueryStateStore store(&grid_, "op", 0, config);
  SnapshotRegistry registry(&grid_, {.retained_versions = 2,
                                     .async_prune = false});
  for (int64_t ckpt = 1; ckpt <= 5; ++ckpt) {
    store.Put(Value(int64_t{1}), Obj(ckpt));
    ASSERT_TRUE(store.SnapshotTo(ckpt).ok());
    registry.OnCheckpointCommitted(ckpt);
  }
  // Only versions {4, 5} retained: entries 1..3 compacted away.
  kv::SnapshotTable* table = grid_.GetSnapshotTable("snapshot_op");
  EXPECT_EQ(table->EntryCount(), 2u);
  EXPECT_EQ(table->GetAt(Value(int64_t{1}), 4)->Get("v").AsInt64(), 4);
}

TEST_F(RegistryTest, ConstantMemoryUnderKeep2) {
  SQueryConfig config;
  SQueryStateStore store(&grid_, "op", 0, config);
  SnapshotRegistry registry(&grid_, {.retained_versions = 2,
                                     .async_prune = false});
  constexpr int64_t kKeys = 50;
  size_t entries_after_warmup = 0;
  for (int64_t ckpt = 1; ckpt <= 20; ++ckpt) {
    for (int64_t k = 0; k < kKeys; ++k) store.Put(Value(k), Obj(ckpt));
    ASSERT_TRUE(store.SnapshotTo(ckpt).ok());
    registry.OnCheckpointCommitted(ckpt);
    const size_t entries =
        grid_.GetSnapshotTable("snapshot_op")->EntryCount();
    if (ckpt == 3) entries_after_warmup = entries;
    if (ckpt > 3) {
      EXPECT_EQ(entries, entries_after_warmup) << "checkpoint " << ckpt;
    }
  }
  EXPECT_EQ(entries_after_warmup, 2 * kKeys);
}

TEST_F(RegistryTest, AbortDropsUncommittedSnapshotData) {
  SQueryStateStore store(&grid_, "op", 0, SQueryConfig{});
  SnapshotRegistry registry(&grid_, {.retained_versions = 2,
                                     .async_prune = false});
  store.Put(Value(int64_t{1}), Obj(1));
  ASSERT_TRUE(store.SnapshotTo(1).ok());
  registry.OnCheckpointCommitted(1);
  store.Put(Value(int64_t{1}), Obj(2));
  ASSERT_TRUE(store.SnapshotTo(2).ok());  // phase 1 done, never commits
  registry.OnCheckpointAborted(2);
  kv::SnapshotTable* table = grid_.GetSnapshotTable("snapshot_op");
  EXPECT_FALSE(table->GetExact(Value(int64_t{1}), 2).has_value());
  EXPECT_EQ(table->GetAt(Value(int64_t{1}), 9)->Get("v").AsInt64(), 1);
}

TEST_F(RegistryTest, WaitForCommitAndAsyncPruneFlush) {
  SnapshotRegistry registry(&grid_, {.retained_versions = 1,
                                     .async_prune = true});
  EXPECT_FALSE(registry.WaitForCommit(1, 20));
  registry.OnCheckpointCommitted(1);
  EXPECT_TRUE(registry.WaitForCommit(1, 1000));
  registry.OnCheckpointCommitted(2);
  registry.FlushPruning();
  EXPECT_EQ(registry.RetainedVersions(), (std::vector<int64_t>{2}));
}

TEST_F(RegistryTest, AsyncPrunerShutsDownCleanlyMidPrune) {
  // Destroy the registry while prune work is still queued/running: the
  // destructor must stop and join the pruner without touching freed state
  // (run under ASan/TSan in CI). Several rounds to vary the timing.
  SQueryConfig config;
  SQueryStateStore store(&grid_, "op", 0, config);
  for (int round = 0; round < 10; ++round) {
    SnapshotRegistry registry(&grid_, {.retained_versions = 1,
                                       .async_prune = true});
    const int64_t base = round * 8;
    for (int64_t i = 1; i <= 8; ++i) {
      for (int64_t k = 0; k < 200; ++k) store.Put(Value(k), Obj(base + i));
      ASSERT_TRUE(store.SnapshotTo(base + i).ok());
      registry.OnCheckpointCommitted(base + i);
    }
    // Registry destructor runs here with up to 7 prunes still in flight.
  }
  kv::SnapshotTable* table = grid_.GetSnapshotTable("snapshot_op");
  ASSERT_NE(table, nullptr);
  // Whatever was pruned, the latest version must be fully readable.
  EXPECT_EQ(table->GetAt(Value(int64_t{0}), 80)->Get("v").AsInt64(), 80);
}

TEST_F(RegistryTest, RestoreCommittedSeedsRetentionAndLatest) {
  SnapshotRegistry registry(&grid_, {.retained_versions = 2,
                                     .async_prune = false});
  registry.RestoreCommitted({1, 2, 3, 4, 5});
  EXPECT_EQ(registry.latest_committed(), 5);
  EXPECT_EQ(registry.RetainedVersions(), (std::vector<int64_t>{4, 5}));
  EXPECT_TRUE(registry.IsQueryable(5));
  EXPECT_TRUE(registry.IsQueryable(4));
  EXPECT_FALSE(registry.IsQueryable(3));
  // WaitForCommit observes the restored frontier immediately.
  EXPECT_TRUE(registry.WaitForCommit(5, 0));
  // Restoring fewer ids than the retention window keeps them all.
  SnapshotRegistry small(&grid_, {.retained_versions = 3,
                                  .async_prune = false});
  small.RestoreCommitted({7});
  EXPECT_EQ(small.latest_committed(), 7);
  EXPECT_EQ(small.RetainedVersions(), (std::vector<int64_t>{7}));
}

TEST(IsolationTest, LevelPredicatesAndNames) {
  EXPECT_FALSE(ReadsSnapshots(IsolationLevel::kReadUncommitted));
  EXPECT_FALSE(ReadsSnapshots(IsolationLevel::kReadCommittedNoFailures));
  EXPECT_TRUE(ReadsSnapshots(IsolationLevel::kSnapshotIsolation));
  EXPECT_TRUE(ReadsSnapshots(IsolationLevel::kSerializable));
  EXPECT_STREQ(IsolationLevelToString(IsolationLevel::kSerializable),
               "serializable");
}

}  // namespace
}  // namespace sq::state
