// Crash-injection tests for the multi-process cluster: real node processes
// (fork per node, each running a NodeServer over its own grid + durable
// snapshot log) are SIGKILLed under a live coordinator. The parent verifies
//  * a query hitting the dead node comes back with a typed error in bounded
//    time, never a hang;
//  * a checkpoint round with a dead participant aborts cleanly and the
//    surviving nodes' latest committed snapshot is unchanged;
//  * a killed node rejoins by recovering its partition range from the
//    durable snapshot log, after which snapshot queries return exactly the
//    pre-kill rows.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "dataflow/checkpoint.h"
#include "kv/grid.h"
#include "kv/object.h"
#include "kv/partitioner.h"
#include "kv/value.h"
#include "net/cluster_client.h"
#include "net/node_server.h"
#include "query/query_service.h"
#include "sql/result_set.h"
#include "state/isolation.h"
#include "state/snapshot_registry.h"
#include "storage/durable_listener.h"
#include "storage/snapshot_log.h"
#include "trace/trace.h"

namespace sq::net {
namespace {

namespace fs = std::filesystem;

constexpr int32_t kNodes = 3;
constexpr int32_t kPartitions = kv::kDefaultPartitionCount;
constexpr int64_t kKeys = 120;

kv::Object OrderValue(int64_t key) {
  kv::Object o;
  o.Set("total", kv::Value((key * 37) % 1000));
  o.Set("region", kv::Value("r" + std::to_string(key % 4)));
  return o;
}

std::string MakeTempDir() {
  std::string tmpl = "/tmp/sq_cluster_crash_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  SQ_CHECK(dir != nullptr) << "mkdtemp failed";
  return dir;
}

/// Child body: one cluster node over a durable snapshot log in `dir`.
/// Recovers whatever the log holds (so the same body serves both cold start
/// and rejoin), starts the server on an ephemeral port, reports the port
/// over `port_fd`, then parks until killed.
[[noreturn]] void RunNodeChild(int32_t node_id, const std::string& dir,
                               int port_fd) {
  kv::Grid grid(kv::GridConfig{.node_count = 1,
                               .partition_count = kPartitions,
                               .backup_count = 0});
  auto log = storage::SnapshotLog::Open(
      {.dir = dir, .flush_bytes = 1, .async_compact = false});
  if (!log.ok()) _exit(2);
  auto replayed = (*log)->ReplayInto(&grid, /*retained_versions=*/2);
  if (!replayed.ok()) _exit(3);
  state::SnapshotRegistry registry(
      &grid, state::SnapshotRegistry::Options{.retained_versions = 2,
                                              .async_prune = false,
                                              .metrics = nullptr});
  registry.RestoreCommitted((*log)->CommittedIds());
  query::QueryService query(&grid, &registry);
  query.set_node_id(node_id);
  query.AttachDurableStorage(log->get());

  // Same listener order as in-process: durability strictly before
  // visibility, so a marker-committed snapshot is already fsynced when the
  // registry starts answering "latest" with it.
  storage::DurableSnapshotListener durable(&grid, log->get());
  dataflow::CheckpointListenerChain chain({&durable, &registry});

  NodeServerOptions opts;
  opts.node_id = node_id;
  opts.owned = kv::PartitionRangeOf(node_id, kNodes, kPartitions);
  opts.partition_count = kPartitions;
  opts.query = &query;
  opts.grid = &grid;
  opts.registry = &registry;
  opts.checkpoint = &chain;
  NodeServer server(opts);
  if (!server.Start().ok()) _exit(4);
  const int32_t port = server.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) _exit(5);
  ::close(port_fd);
  for (;;) ::pause();
}

struct ChildNode {
  pid_t pid = -1;
  int port = 0;
  std::string dir;
};

ChildNode SpawnNode(int32_t node_id, const std::string& dir) {
  int pipe_fds[2];
  SQ_CHECK(::pipe(pipe_fds) == 0);
  const pid_t pid = ::fork();
  SQ_CHECK(pid >= 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    RunNodeChild(node_id, dir, pipe_fds[1]);  // never returns
  }
  ::close(pipe_fds[1]);
  int32_t port = 0;
  size_t got = 0;
  while (got < sizeof(port)) {
    const ssize_t n = ::read(pipe_fds[0], reinterpret_cast<char*>(&port) + got,
                             sizeof(port) - got);
    SQ_CHECK(n > 0) << "node " << node_id << " died before reporting a port";
    got += static_cast<size_t>(n);
  }
  ::close(pipe_fds[0]);
  return ChildNode{pid, port, dir};
}

void KillNode(ChildNode* node) {
  if (node->pid < 0) return;
  SQ_CHECK(::kill(node->pid, SIGKILL) == 0);
  int status = 0;
  SQ_CHECK(::waitpid(node->pid, &status, 0) == node->pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  node->pid = -1;
}

/// Fresh coordinator over the given child processes (rebuilt after a rejoin,
/// when a node's port changes).
struct Coordinator {
  std::unique_ptr<kv::Grid> grid;
  std::unique_ptr<state::SnapshotRegistry> registry;
  std::unique_ptr<ClusterClient> client;
  std::unique_ptr<query::QueryService> query;
};

Coordinator MakeCoordinator(const std::vector<ChildNode>& nodes) {
  Coordinator c;
  ClusterTopology topology;
  topology.partition_count = kPartitions;
  for (size_t i = 0; i < nodes.size(); ++i) {
    topology.nodes.push_back(NodeAddress{static_cast<int32_t>(i), "127.0.0.1",
                                         nodes[i].port});
  }
  c.grid = std::make_unique<kv::Grid>(kv::GridConfig{
      .node_count = 1, .partition_count = kPartitions, .backup_count = 0});
  c.registry = std::make_unique<state::SnapshotRegistry>(
      c.grid.get(), state::SnapshotRegistry::Options{.retained_versions = 2,
                                                     .async_prune = false,
                                                     .metrics = nullptr});
  c.client = std::make_unique<ClusterClient>(
      topology,
      RpcOptions{.deadline_ms = 5000, .max_attempts = 2, .backoff_ms = 10});
  c.query = std::make_unique<query::QueryService>(c.grid.get(),
                                                  c.registry.get());
  c.query->AttachCluster(c.client.get());
  return c;
}

TEST(ClusterCrashTest, KillRecoveryAndRejoin) {
  std::vector<ChildNode> nodes;
  for (int32_t i = 0; i < kNodes; ++i) {
    nodes.push_back(SpawnNode(i, MakeTempDir()));
  }

  {
    Coordinator coord = MakeCoordinator(nodes);

    // Load live + snapshot state over the wire and commit snapshot 1 with a
    // marker round; each child's durable listener fsyncs the deltas before
    // its registry publishes the id.
    std::vector<DeltaEntry> live;
    std::vector<DeltaEntry> snap;
    for (int64_t k = 0; k < kKeys; ++k) {
      live.push_back(DeltaEntry{kv::Value(k), false, OrderValue(k)});
      snap.push_back(DeltaEntry{kv::Value(k), false, OrderValue(k)});
    }
    ASSERT_TRUE(coord.client->Apply("orders", 0, live).ok());
    ASSERT_TRUE(coord.client->Apply("snapshot_orders", 1, snap).ok());
    ASSERT_TRUE(coord.client->RunCheckpoint(1).ok());

    query::QueryOptions live_opts;
    live_opts.isolation = state::IsolationLevel::kReadCommittedNoFailures;
    auto live_before = coord.query->Execute(
        "SELECT count(*), sum(total) FROM orders", live_opts);
    ASSERT_TRUE(live_before.ok()) << live_before.status();

    auto snap_before = coord.query->Execute(
        "SELECT key, total FROM snapshot_orders ORDER BY key");
    ASSERT_TRUE(snap_before.ok()) << snap_before.status();
    ASSERT_EQ(snap_before->rows.size(), static_cast<size_t>(kKeys));

    // --- Kill a node under a live coordinator. Queries that need its
    // partitions must fail typed and bounded, not hang.
    KillNode(&nodes[1]);
    const int64_t t0 = trace::NowNanos();
    auto during = coord.query->Execute(
        "SELECT count(*), sum(total) FROM orders", live_opts);
    const int64_t elapsed_ms = (trace::NowNanos() - t0) / 1'000'000;
    ASSERT_FALSE(during.ok());
    EXPECT_TRUE(during.status().IsUnavailable() ||
                during.status().IsTimeout())
        << during.status();
    EXPECT_LT(elapsed_ms, 120'000);

    // --- A checkpoint round with a dead participant aborts cleanly...
    Status cp = coord.client->RunCheckpoint(2);
    EXPECT_TRUE(cp.IsAborted()) << cp;

    // ...and the survivors still serve snapshot 1 (their share of it).
    auto resolved = coord.client->ResolveSsid(std::nullopt);
    ASSERT_TRUE(resolved.ok()) << resolved.status();
    EXPECT_EQ(*resolved, 1);

    // --- Rejoin: a new process over the same durable directory recovers
    // the partition range from the snapshot log.
    nodes[1] = SpawnNode(1, nodes[1].dir);
  }

  {
    Coordinator coord = MakeCoordinator(nodes);
    auto snap_after = coord.query->Execute(
        "SELECT key, total FROM snapshot_orders ORDER BY key");
    ASSERT_TRUE(snap_after.ok()) << snap_after.status();
    ASSERT_EQ(snap_after->rows.size(), static_cast<size_t>(kKeys));
    for (int64_t k = 0; k < kKeys; ++k) {
      EXPECT_EQ(snap_after->rows[static_cast<size_t>(k)][0], kv::Value(k));
      EXPECT_EQ(snap_after->rows[static_cast<size_t>(k)][1],
                kv::Value((k * 37) % 1000));
    }
    // A fresh checkpoint round succeeds again with all nodes back.
    std::vector<DeltaEntry> delta;
    delta.push_back(DeltaEntry{kv::Value(int64_t{0}), false, OrderValue(0)});
    ASSERT_TRUE(coord.client->Apply("snapshot_orders", 2, delta).ok());
    EXPECT_TRUE(coord.client->RunCheckpoint(2).ok());
    auto resolved = coord.client->ResolveSsid(std::nullopt);
    ASSERT_TRUE(resolved.ok()) << resolved.status();
    EXPECT_EQ(*resolved, 2);
  }

  for (auto& node : nodes) {
    KillNode(&node);
    std::error_code ec;
    fs::remove_all(node.dir, ec);
  }
}

}  // namespace
}  // namespace sq::net
