// Crash-injection tests for the multi-process cluster: real node processes
// (fork per node, each running a NodeServer over its own grid + durable
// snapshot log) are SIGKILLed under a live coordinator. The parent verifies
//  * a query hitting the dead node comes back with a typed error in bounded
//    time, never a hang;
//  * a checkpoint round with a dead participant aborts cleanly and the
//    surviving nodes' latest committed snapshot is unchanged;
//  * a killed node rejoins by recovering its partition range from the
//    durable snapshot log, after which snapshot queries return exactly the
//    pre-kill rows.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "dataflow/checkpoint.h"
#include "kv/grid.h"
#include "kv/object.h"
#include "kv/partitioner.h"
#include "kv/value.h"
#include "net/cluster_client.h"
#include "net/node_server.h"
#include "query/query_service.h"
#include "sql/result_set.h"
#include "state/isolation.h"
#include "state/snapshot_registry.h"
#include "storage/durable_listener.h"
#include "storage/snapshot_log.h"
#include "trace/trace.h"

namespace sq::net {
namespace {

namespace fs = std::filesystem;

constexpr int32_t kNodes = 3;
constexpr int32_t kPartitions = kv::kDefaultPartitionCount;
constexpr int64_t kKeys = 120;

kv::Object OrderValue(int64_t key) {
  kv::Object o;
  o.Set("total", kv::Value((key * 37) % 1000));
  o.Set("region", kv::Value("r" + std::to_string(key % 4)));
  return o;
}

std::string MakeTempDir() {
  std::string tmpl = "/tmp/sq_cluster_crash_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  SQ_CHECK(dir != nullptr) << "mkdtemp failed";
  return dir;
}

/// Child body: one cluster node over a durable snapshot log in `dir`.
/// Recovers whatever the log holds (so the same body serves both cold start
/// and rejoin), starts the server on an ephemeral port, reports the port
/// over `port_fd`, then parks until killed.
[[noreturn]] void RunNodeChild(int32_t node_id, const std::string& dir,
                               int port_fd) {
  kv::Grid grid(kv::GridConfig{.node_count = 1,
                               .partition_count = kPartitions,
                               .backup_count = 0});
  auto log = storage::SnapshotLog::Open(
      {.dir = dir, .flush_bytes = 1, .async_compact = false});
  if (!log.ok()) _exit(2);
  auto replayed = (*log)->ReplayInto(&grid, /*retained_versions=*/2);
  if (!replayed.ok()) _exit(3);
  state::SnapshotRegistry registry(
      &grid, state::SnapshotRegistry::Options{.retained_versions = 2,
                                              .async_prune = false,
                                              .metrics = nullptr});
  registry.RestoreCommitted((*log)->CommittedIds());
  query::QueryService query(&grid, &registry);
  query.set_node_id(node_id);
  query.AttachDurableStorage(log->get());
  // Every child carries its own registry so federated `__metrics` scans see
  // genuinely per-process values. No job runs here, so the engine tables
  // (`__operators`) stay absent by design.
  MetricsRegistry metrics;
  query.RegisterEngineIntrospection(/*job=*/nullptr, &metrics);

  // Same listener order as in-process: durability strictly before
  // visibility, so a marker-committed snapshot is already fsynced when the
  // registry starts answering "latest" with it.
  storage::DurableSnapshotListener durable(&grid, log->get());
  dataflow::CheckpointListenerChain chain({&durable, &registry});

  NodeServerOptions opts;
  opts.node_id = node_id;
  opts.owned = kv::PartitionRangeOf(node_id, kNodes, kPartitions);
  opts.partition_count = kPartitions;
  opts.query = &query;
  opts.grid = &grid;
  opts.registry = &registry;
  opts.checkpoint = &chain;
  opts.metrics = &metrics;
  NodeServer server(opts);
  if (!server.Start().ok()) _exit(4);
  const int32_t port = server.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) _exit(5);
  ::close(port_fd);
  for (;;) ::pause();
}

struct ChildNode {
  pid_t pid = -1;
  int port = 0;
  std::string dir;
};

ChildNode SpawnNode(int32_t node_id, const std::string& dir) {
  int pipe_fds[2];
  SQ_CHECK(::pipe(pipe_fds) == 0);
  const pid_t pid = ::fork();
  SQ_CHECK(pid >= 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    RunNodeChild(node_id, dir, pipe_fds[1]);  // never returns
  }
  ::close(pipe_fds[1]);
  int32_t port = 0;
  size_t got = 0;
  while (got < sizeof(port)) {
    const ssize_t n = ::read(pipe_fds[0], reinterpret_cast<char*>(&port) + got,
                             sizeof(port) - got);
    SQ_CHECK(n > 0) << "node " << node_id << " died before reporting a port";
    got += static_cast<size_t>(n);
  }
  ::close(pipe_fds[0]);
  return ChildNode{pid, port, dir};
}

void KillNode(ChildNode* node) {
  if (node->pid < 0) return;
  SQ_CHECK(::kill(node->pid, SIGKILL) == 0);
  int status = 0;
  SQ_CHECK(::waitpid(node->pid, &status, 0) == node->pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  node->pid = -1;
}

/// Fresh coordinator over the given child processes (rebuilt after a rejoin,
/// when a node's port changes).
struct Coordinator {
  std::unique_ptr<kv::Grid> grid;
  std::unique_ptr<state::SnapshotRegistry> registry;
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<ClusterClient> client;
  std::unique_ptr<query::QueryService> query;
};

Coordinator MakeCoordinator(const std::vector<ChildNode>& nodes) {
  Coordinator c;
  ClusterTopology topology;
  topology.partition_count = kPartitions;
  for (size_t i = 0; i < nodes.size(); ++i) {
    topology.nodes.push_back(NodeAddress{static_cast<int32_t>(i), "127.0.0.1",
                                         nodes[i].port});
  }
  c.grid = std::make_unique<kv::Grid>(kv::GridConfig{
      .node_count = 1, .partition_count = kPartitions, .backup_count = 0});
  c.registry = std::make_unique<state::SnapshotRegistry>(
      c.grid.get(), state::SnapshotRegistry::Options{.retained_versions = 2,
                                                     .async_prune = false,
                                                     .metrics = nullptr});
  c.client = std::make_unique<ClusterClient>(
      topology,
      RpcOptions{.deadline_ms = 5000, .max_attempts = 2, .backoff_ms = 10});
  c.query = std::make_unique<query::QueryService>(c.grid.get(),
                                                  c.registry.get());
  // Registers `__metrics` at the coordinator so federated scans of it have a
  // local table to fan out from (the coordinator's own registry stays empty).
  c.metrics = std::make_unique<MetricsRegistry>();
  c.query->RegisterEngineIntrospection(/*job=*/nullptr, c.metrics.get());
  c.query->AttachCluster(c.client.get());
  return c;
}

TEST(ClusterCrashTest, KillRecoveryAndRejoin) {
  std::vector<ChildNode> nodes;
  for (int32_t i = 0; i < kNodes; ++i) {
    nodes.push_back(SpawnNode(i, MakeTempDir()));
  }

  {
    Coordinator coord = MakeCoordinator(nodes);

    // Load live + snapshot state over the wire and commit snapshot 1 with a
    // marker round; each child's durable listener fsyncs the deltas before
    // its registry publishes the id.
    std::vector<DeltaEntry> live;
    std::vector<DeltaEntry> snap;
    for (int64_t k = 0; k < kKeys; ++k) {
      live.push_back(DeltaEntry{kv::Value(k), false, OrderValue(k)});
      snap.push_back(DeltaEntry{kv::Value(k), false, OrderValue(k)});
    }
    ASSERT_TRUE(coord.client->Apply("orders", 0, live).ok());
    ASSERT_TRUE(coord.client->Apply("snapshot_orders", 1, snap).ok());
    ASSERT_TRUE(coord.client->RunCheckpoint(1).ok());

    query::QueryOptions live_opts;
    live_opts.isolation = state::IsolationLevel::kReadCommittedNoFailures;
    auto live_before = coord.query->Execute(
        "SELECT count(*), sum(total) FROM orders", live_opts);
    ASSERT_TRUE(live_before.ok()) << live_before.status();

    auto snap_before = coord.query->Execute(
        "SELECT key, total FROM snapshot_orders ORDER BY key");
    ASSERT_TRUE(snap_before.ok()) << snap_before.status();
    ASSERT_EQ(snap_before->rows.size(), static_cast<size_t>(kKeys));

    // --- Kill a node under a live coordinator. Queries that need its
    // partitions must fail typed and bounded, not hang.
    KillNode(&nodes[1]);
    const int64_t t0 = trace::NowNanos();
    auto during = coord.query->Execute(
        "SELECT count(*), sum(total) FROM orders", live_opts);
    const int64_t elapsed_ms = (trace::NowNanos() - t0) / 1'000'000;
    ASSERT_FALSE(during.ok());
    EXPECT_TRUE(during.status().IsUnavailable() ||
                during.status().IsTimeout())
        << during.status();
    EXPECT_LT(elapsed_ms, 120'000);

    // --- A checkpoint round with a dead participant aborts cleanly...
    Status cp = coord.client->RunCheckpoint(2);
    EXPECT_TRUE(cp.IsAborted()) << cp;

    // ...and the survivors still serve snapshot 1 (their share of it).
    auto resolved = coord.client->ResolveSsid(std::nullopt);
    ASSERT_TRUE(resolved.ok()) << resolved.status();
    EXPECT_EQ(*resolved, 1);

    // --- Rejoin: a new process over the same durable directory recovers
    // the partition range from the snapshot log.
    nodes[1] = SpawnNode(1, nodes[1].dir);
  }

  {
    Coordinator coord = MakeCoordinator(nodes);
    auto snap_after = coord.query->Execute(
        "SELECT key, total FROM snapshot_orders ORDER BY key");
    ASSERT_TRUE(snap_after.ok()) << snap_after.status();
    ASSERT_EQ(snap_after->rows.size(), static_cast<size_t>(kKeys));
    for (int64_t k = 0; k < kKeys; ++k) {
      EXPECT_EQ(snap_after->rows[static_cast<size_t>(k)][0], kv::Value(k));
      EXPECT_EQ(snap_after->rows[static_cast<size_t>(k)][1],
                kv::Value((k * 37) % 1000));
    }
    // A fresh checkpoint round succeeds again with all nodes back.
    std::vector<DeltaEntry> delta;
    delta.push_back(DeltaEntry{kv::Value(int64_t{0}), false, OrderValue(0)});
    ASSERT_TRUE(coord.client->Apply("snapshot_orders", 2, delta).ok());
    EXPECT_TRUE(coord.client->RunCheckpoint(2).ok());
    auto resolved = coord.client->ResolveSsid(std::nullopt);
    ASSERT_TRUE(resolved.ok()) << resolved.status();
    EXPECT_EQ(*resolved, 2);
  }

  for (auto& node : nodes) {
    KillNode(&node);
    std::error_code ec;
    fs::remove_all(node.dir, ec);
  }
}

// Observability across real process boundaries. Unlike the in-process
// net_test cluster (one shared trace journal), every child here has its own
// journal and metrics registry, so a federated `__spans` query is genuine
// cross-process stitching: the coordinator's `rpc.call` spans and each
// child's `rpc.serve` span reassemble into one distributed tree under a
// single trace id. Then a SIGKILL shows the degradation contract — typed
// partial results within the RPC deadline, the dead node visible in
// `__nodes` — on real processes.
TEST(ClusterCrashTest, FederatedObservabilitySpansProcessBoundaries) {
  constexpr int32_t kCoordinatorNodeId = 9;
  std::vector<ChildNode> nodes;
  for (int32_t i = 0; i < kNodes; ++i) {
    nodes.push_back(SpawnNode(i, MakeTempDir()));
  }
  Coordinator coord = MakeCoordinator(nodes);
  coord.query->set_node_id(kCoordinatorNodeId);

  // One RPC per node under a forced root: the trace id rides the frame, so
  // each child records `rpc.serve` in its *own* journal while the
  // coordinator records the matching `rpc.call` client side.
  const uint64_t trace_id = trace::NewTraceId();
  {
    trace::ScopedSpan root(trace::Category::kNet, "test.cluster_root",
                           trace::RootContext(trace_id, /*forced=*/true));
    for (int32_t i = 0; i < kNodes; ++i) {
      auto hello = coord.client->Hello(i);
      ASSERT_TRUE(hello.ok()) << hello.status();
    }
  }

  // The federated scan stitches the full distributed tree back together:
  // one server-side span per child process, three client-side spans plus
  // the root at the coordinator.
  const std::string sql = "SELECT node, name FROM __spans WHERE trace_id = " +
                          std::to_string(trace_id) + " ORDER BY node, name";
  auto spans = coord.query->Execute(sql);
  ASSERT_TRUE(spans.ok()) << spans.status();
  ASSERT_EQ(spans->rows.size(), 7u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(spans->rows[i][0], kv::Value(static_cast<int64_t>(i)));
    EXPECT_EQ(spans->rows[i][1], kv::Value("rpc.serve"));
  }
  for (size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(spans->rows[i][0], kv::Value(int64_t{kCoordinatorNodeId}));
    EXPECT_EQ(spans->rows[i][1], kv::Value("rpc.call"));
  }
  EXPECT_EQ(spans->rows[6][0], kv::Value(int64_t{kCoordinatorNodeId}));
  EXPECT_EQ(spans->rows[6][1], kv::Value("test.cluster_root"));

  // `__metrics` federates per process: each child's own registry counted
  // the hello it served; the coordinator's registry has no server counters,
  // so exactly the three child rows come back.
  auto hellos = coord.query->Execute(
      "SELECT node, value FROM __metrics "
      "WHERE name = 'net.server.rpcs.hello' ORDER BY node");
  ASSERT_TRUE(hellos.ok()) << hellos.status();
  ASSERT_EQ(hellos->rows.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hellos->rows[i][0], kv::Value(static_cast<int64_t>(i)));
    EXPECT_GE(hellos->rows[i][1].AsInt64(), 1);
  }

  // --- SIGKILL one child under the live coordinator. The federated scan
  // must degrade to typed partial results in bounded time, never a hang,
  // and `__nodes` must show why the rows are missing.
  KillNode(&nodes[1]);
  const int64_t t0 = trace::NowNanos();
  auto partial = coord.query->Execute(sql);
  const int64_t elapsed_ms = (trace::NowNanos() - t0) / 1'000'000;
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_LT(elapsed_ms, 120'000);
  ASSERT_EQ(partial->rows.size(), 6u);  // node 1's rpc.serve span is gone
  for (const auto& row : partial->rows) {
    EXPECT_NE(row[0], kv::Value(int64_t{1}));
  }

  auto health = coord.query->Execute(
      "SELECT node, status FROM __nodes WHERE msg_type = '' ORDER BY node");
  ASSERT_TRUE(health.ok()) << health.status();
  ASSERT_EQ(health->rows.size(), 3u);
  EXPECT_EQ(health->rows[0][1], kv::Value("ok"));
  EXPECT_EQ(health->rows[1][1], kv::Value("unreachable"));
  EXPECT_EQ(health->rows[2][1], kv::Value("ok"));

  for (auto& node : nodes) {
    KillNode(&node);
    std::error_code ec;
    fs::remove_all(node.dir, ec);
  }
}

}  // namespace
}  // namespace sq::net
