// Tests for the sq::net cluster layer, in three tiers:
//
//  1. Adversarial frame-codec tests: truncation at every prefix length,
//     a flip of every single bit, zero/oversized length prefixes, unknown
//     versions and message types, crafted huge element counts — all must
//     yield typed Status errors, never a crash or over-read.
//  2. Socket-level frame round trip over a real loopback connection.
//  3. An in-process three-node cluster (three NodeServers, one coordinator
//     QueryService with a ClusterClient attached) checked differentially
//     against a single-process QueryService holding the same data: every
//     query must come back bit-identical. Plus the failure modes: dead
//     node, silent peer, checkpoint abort, misrouted partition.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/status.h"
#include "kv/grid.h"
#include "kv/object.h"
#include "kv/partitioner.h"
#include "kv/value.h"
#include "net/cluster_client.h"
#include "net/node_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "query/query_service.h"
#include "sql/result_set.h"
#include "state/isolation.h"
#include "state/snapshot_registry.h"
#include "trace/trace.h"

namespace sq::net {
namespace {

// ---------------------------------------------------------------------------
// Wire codec.

Frame SamplePointLookupFrame() {
  Frame frame;
  frame.type = MsgType::kPointLookup;
  frame.request_id = 7;
  frame.trace_id = 9;
  PointLookupRequest req;
  req.read.table = "orders";
  req.read.has_ssid = true;
  req.read.ssid = 3;
  req.keys.push_back(kv::Value(int64_t{1}));
  req.keys.push_back(kv::Value("alpha"));
  req.keys.push_back(kv::Value(2.5));
  req.keys.push_back(kv::Value(true));
  req.keys.push_back(kv::Value::Null());
  EncodePointLookupRequest(req, &frame.body);
  return frame;
}

void OverwriteLe32(std::string* buf, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*buf)[pos + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

TEST(WireCodec, FrameRoundTrip) {
  const Frame frame = SamplePointLookupFrame();
  std::string encoded;
  EncodeFrame(frame, &encoded);
  ASSERT_GT(encoded.size(), kFrameHeaderBytes + kPayloadPrefixBytes);

  size_t consumed = 0;
  auto decoded = DecodeFrame(encoded, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_EQ(decoded->version, kWireVersion);
  EXPECT_EQ(decoded->type, MsgType::kPointLookup);
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_EQ(decoded->trace_id, 9u);

  auto req = DecodePointLookupRequest(decoded->body);
  ASSERT_TRUE(req.ok()) << req.status();
  EXPECT_EQ(req->read.table, "orders");
  EXPECT_TRUE(req->read.has_ssid);
  EXPECT_EQ(req->read.ssid, 3);
  EXPECT_FALSE(req->read.all_versions);
  ASSERT_EQ(req->keys.size(), 5u);
  EXPECT_EQ(req->keys[0], kv::Value(int64_t{1}));
  EXPECT_EQ(req->keys[1], kv::Value("alpha"));
  EXPECT_EQ(req->keys[2], kv::Value(2.5));
  EXPECT_EQ(req->keys[3], kv::Value(true));
  EXPECT_TRUE(req->keys[4].is_null());
}

TEST(WireCodec, DecodeConsumesOneFrameFromAStream) {
  std::string stream;
  EncodeFrame(SamplePointLookupFrame(), &stream);
  const size_t first = stream.size();
  Frame second = SamplePointLookupFrame();
  second.request_id = 8;
  EncodeFrame(second, &stream);

  size_t consumed = 0;
  auto a = DecodeFrame(stream, &consumed);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(a->request_id, 7u);
  EXPECT_EQ(consumed, first);
  auto b = DecodeFrame(std::string_view(stream).substr(consumed), &consumed);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(b->request_id, 8u);
}

TEST(WireCodec, EveryTruncationFailsCleanly) {
  std::string encoded;
  EncodeFrame(SamplePointLookupFrame(), &encoded);
  for (size_t n = 0; n < encoded.size(); ++n) {
    auto decoded = DecodeFrame(std::string_view(encoded.data(), n));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << n << " bytes decoded";
  }
}

TEST(WireCodec, EverySingleBitFlipIsDetected) {
  std::string encoded;
  EncodeFrame(SamplePointLookupFrame(), &encoded);
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = encoded;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto decoded = DecodeFrame(corrupt);
      EXPECT_FALSE(decoded.ok())
          << "flip of byte " << byte << " bit " << bit << " went undetected";
    }
  }
}

TEST(WireCodec, ZeroLengthFrameRejected) {
  std::string encoded;
  EncodeFrame(SamplePointLookupFrame(), &encoded);
  OverwriteLe32(&encoded, 0, 0);
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument()) << decoded.status();
}

TEST(WireCodec, OversizedLengthRejectedBeforeAllocation) {
  // Only the 8-byte header exists: a hostile length prefix must be rejected
  // from the bounds alone, not by attempting to read (or allocate) 4 GiB.
  std::string encoded;
  EncodeFrame(SamplePointLookupFrame(), &encoded);
  encoded.resize(kFrameHeaderBytes);
  OverwriteLe32(&encoded, 0, 0xfffffffeu);
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument()) << decoded.status();
}

TEST(WireCodec, UnknownVersionRejected) {
  Frame frame = SamplePointLookupFrame();
  frame.version = kWireVersion + 1;
  std::string encoded;
  EncodeFrame(frame, &encoded);
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnimplemented)
      << decoded.status();
}

TEST(WireCodec, UnknownMessageTypeRejected) {
  Frame frame = SamplePointLookupFrame();
  frame.type = static_cast<MsgType>(200);
  std::string encoded;
  EncodeFrame(frame, &encoded);
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsParseError()) << decoded.status();
}

TEST(WireCodec, BodyTrailingBytesRejected) {
  Frame frame = SamplePointLookupFrame();
  frame.body.push_back('\0');
  auto req = DecodePointLookupRequest(frame.body);
  EXPECT_FALSE(req.ok());
}

TEST(WireCodec, HugeElementCountRejected) {
  // A crafted count larger than the remaining bytes must fail the bounds
  // check instead of looping (or reserving) four billion elements. The key
  // count is the last 4 body bytes of a keyless request.
  PointLookupRequest req;
  req.read.table = "orders";
  std::string body;
  EncodePointLookupRequest(req, &body);
  ASSERT_GE(body.size(), 4u);
  OverwriteLe32(&body, body.size() - 4, 0xffffffffu);
  auto decoded = DecodePointLookupRequest(body);
  EXPECT_FALSE(decoded.ok());
}

TEST(WireCodec, StatusBodyRoundTrip) {
  std::string body;
  EncodeStatusBody(Status::OutOfRange("partition 7 not owned"), &body);
  Status decoded;
  ASSERT_TRUE(DecodeStatusBody(body, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(decoded.message(), "partition 7 not owned");

  Status ignored;
  EXPECT_FALSE(DecodeStatusBody(body.substr(0, 2), &ignored).ok());
  std::string bad_code = body;
  bad_code[0] = static_cast<char>(0xff);
  EXPECT_FALSE(DecodeStatusBody(bad_code, &ignored).ok());
}

TEST(WireCodec, AggregateReplyRoundTripPreservesAggStateBits) {
  AggregateReply reply;
  reply.rows_scanned = 100;
  reply.rows_returned = 42;
  WireGroup group;
  group.key.push_back(kv::Value("east"));
  group.representative.Set("key", kv::Value(int64_t{5}));
  group.representative.Set("region", kv::Value("east"));
  sql::AggState st;
  st.count = 3;
  st.all_int = false;
  st.isum = 4;
  st.sum = 0.1 + 0.2;  // a value whose bits matter
  st.has_best = true;
  st.best = kv::Value("zz");
  st.distinct.insert(kv::Value(int64_t{1}));
  st.distinct.insert(kv::Value("a"));
  group.aggs.push_back(st);
  reply.groups.push_back(group);

  std::string body;
  EncodeAggregateReply(reply, &body);
  auto decoded = DecodeAggregateReply(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->rows_scanned, 100);
  EXPECT_EQ(decoded->rows_returned, 42);
  ASSERT_EQ(decoded->groups.size(), 1u);
  const WireGroup& g = decoded->groups[0];
  EXPECT_EQ(g.key, group.key);
  EXPECT_EQ(g.representative, group.representative);
  ASSERT_EQ(g.aggs.size(), 1u);
  EXPECT_EQ(g.aggs[0].count, 3);
  EXPECT_FALSE(g.aggs[0].all_int);
  EXPECT_EQ(g.aggs[0].isum, 4);
  EXPECT_EQ(g.aggs[0].sum, st.sum);  // exact: bits travel via bit_cast
  EXPECT_TRUE(g.aggs[0].has_best);
  EXPECT_EQ(g.aggs[0].best, kv::Value("zz"));
  EXPECT_EQ(g.aggs[0].distinct, st.distinct);
}

TEST(WireCodec, SmallPayloadRoundTrips) {
  {
    HelloReply msg{2, 90, 181, 271};
    std::string body;
    EncodeHelloReply(msg, &body);
    auto decoded = DecodeHelloReply(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->node_id, 2);
    EXPECT_EQ(decoded->partition_begin, 90);
    EXPECT_EQ(decoded->partition_end, 181);
    EXPECT_EQ(decoded->partition_count, 271);
  }
  {
    ReplicationDelta msg;
    msg.table = "snapshot_orders";
    msg.ssid = 4;
    msg.entries.push_back({kv::Value(int64_t{9}), false,
                           kv::Object{{"total", kv::Value(int64_t{12})}}});
    msg.entries.push_back({kv::Value(int64_t{10}), true, kv::Object{}});
    std::string body;
    EncodeReplicationDelta(msg, &body);
    auto decoded = DecodeReplicationDelta(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->table, "snapshot_orders");
    EXPECT_EQ(decoded->ssid, 4);
    ASSERT_EQ(decoded->entries.size(), 2u);
    EXPECT_FALSE(decoded->entries[0].tombstone);
    EXPECT_EQ(decoded->entries[0].value.Get("total"), kv::Value(int64_t{12}));
    EXPECT_TRUE(decoded->entries[1].tombstone);
  }
  {
    CheckpointMarker msg{CheckpointPhase::kCommit, 17};
    std::string body;
    EncodeCheckpointMarker(msg, &body);
    auto decoded = DecodeCheckpointMarker(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->phase, CheckpointPhase::kCommit);
    EXPECT_EQ(decoded->checkpoint_id, 17);
  }
  {
    ResolveSsidRequest msg{true, 5};
    std::string body;
    EncodeResolveSsidRequest(msg, &body);
    auto decoded = DecodeResolveSsidRequest(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(decoded->has_requested);
    EXPECT_EQ(decoded->requested, 5);
  }
  {
    FetchSystemTableRequest msg{"__spans"};
    std::string body;
    EncodeFetchSystemTableRequest(msg, &body);
    auto decoded = DecodeFetchSystemTableRequest(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->table, "__spans");
  }
  {
    SystemTableReply msg;
    kv::Object row;
    row.Set("name", kv::Value("x.y"));
    row.Set("node", kv::Value(int64_t{2}));
    msg.rows.push_back(std::move(row));
    WireHistogram h;
    h.name = "x.nanos";
    h.buckets = {1, 0, 3};
    h.count = 4;
    h.min = 2;
    h.max = 9;
    h.sum = 0.1 + 0.2;  // a value whose bits matter
    msg.histograms.push_back(h);
    msg.server_unix_micros = 1700000000000001;
    std::string body;
    EncodeSystemTableReply(msg, &body);
    auto decoded = DecodeSystemTableReply(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded->rows.size(), 1u);
    EXPECT_EQ(decoded->rows[0].Get("name"), kv::Value("x.y"));
    EXPECT_EQ(decoded->rows[0].Get("node"), kv::Value(int64_t{2}));
    ASSERT_EQ(decoded->histograms.size(), 1u);
    EXPECT_EQ(decoded->histograms[0].name, "x.nanos");
    EXPECT_EQ(decoded->histograms[0].buckets, h.buckets);
    EXPECT_EQ(decoded->histograms[0].count, 4);
    EXPECT_EQ(decoded->histograms[0].min, 2);
    EXPECT_EQ(decoded->histograms[0].max, 9);
    EXPECT_EQ(decoded->histograms[0].sum, h.sum);  // exact: bit_cast travel
    EXPECT_EQ(decoded->server_unix_micros, 1700000000000001);
  }
}

// ---------------------------------------------------------------------------
// Golden-frame corpus: one checked-in encoded frame per MsgType. Each case
// asserts (a) re-encoding the canonical message reproduces the checked-in
// bytes exactly — any wire-format drift (field order, width, CRC, framing)
// fails here before it can strand persisted frames or break rolling
// upgrades — and (b) decoding the checked-in bytes round-trips byte-exactly.
// sq-lint's wire pass cross-checks that every MsgType appears between the
// corpus markers below.

std::string FromHex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    return c - 'a' + 10;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

std::string ToHex(std::string_view bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

struct GoldenFrame {
  MsgType type;
  std::string hex;  // full encoded frame: header + payload
  std::function<Frame()> build;
};

std::vector<GoldenFrame> GoldenCorpus() {
  std::vector<GoldenFrame> corpus;
  auto add = [&corpus](MsgType type, std::string hex,
                       std::function<Frame()> build) {
    corpus.push_back({type, std::move(hex), std::move(build)});
  };
  // sqlint-golden-corpus-begin
  add(MsgType::kHello, "1200000020c2dfdf010101000000000000000000000000000000",
      [] {
        Frame f;
        f.type = MsgType::kHello;
        f.request_id = 1;
        return f;
      });
  add(MsgType::kPointLookup,
      "3d00000014a713eb01020200000000000000bc0a000000000000060000006f72646572"
      "7301030000000000000000020000000201000000000000000405000000616c706861",
      [] {
        Frame f;
        f.type = MsgType::kPointLookup;
        f.request_id = 2;
        f.trace_id = 0xabc;
        PointLookupRequest m;
        m.read.table = "orders";
        m.read.has_ssid = true;
        m.read.ssid = 3;
        m.keys.push_back(kv::Value(int64_t{1}));
        m.keys.push_back(kv::Value("alpha"));
        EncodePointLookupRequest(m, &f.body);
        return f;
      });
  add(MsgType::kScanPartition,
      "400000004a2781f4010303000000000000000000000000000000060000006f72646572"
      "7300000000000000000000020000000a0000007072696365203e20313000401e18240a"
      "0600",
      [] {
        Frame f;
        f.type = MsgType::kScanPartition;
        f.request_id = 3;
        ScanPartitionRequest m;
        m.read.table = "orders";
        m.partition = 2;
        m.predicate_sql = "price > 10";
        m.local_timestamp_micros = 1700000000000000;
        EncodeScanPartitionRequest(m, &f.body);
        return f;
      });
  add(MsgType::kAggregatePartition,
      "61000000320b3ff00104040000000000000000000000000000000400000062696473"
      "010900000000000000000100000000000000010000000700000061756374696f6e02"
      "00000008000000636f756e74282a290a0000006d6178287072696365290000000000"
      "000000",
      [] {
        Frame f;
        f.type = MsgType::kAggregatePartition;
        f.request_id = 4;
        AggregatePartitionRequest m;
        m.read.table = "bids";
        m.read.has_ssid = true;
        m.read.ssid = 9;
        m.partition = 1;
        m.group_by_sql.push_back("auction");
        m.aggregate_sql.push_back("count(*)");
        m.aggregate_sql.push_back("max(price)");
        EncodeAggregatePartitionRequest(m, &f.body);
        return f;
      });
  add(MsgType::kReplicationDelta,
      "560000007a27a7e4010505000000000000000000000000000000060000006f72646572"
      "73070000000000000002000000020a000000000000000001000000050000007072696365"
      "030000000000000440020b000000000000000100000000",
      [] {
        Frame f;
        f.type = MsgType::kReplicationDelta;
        f.request_id = 5;
        ReplicationDelta m;
        m.table = "orders";
        m.ssid = 7;
        DeltaEntry put;
        put.key = kv::Value(int64_t{10});
        put.value.Set("price", kv::Value(2.5));
        m.entries.push_back(std::move(put));
        DeltaEntry del;
        del.key = kv::Value(int64_t{11});
        del.tombstone = true;
        m.entries.push_back(std::move(del));
        EncodeReplicationDelta(m, &f.body);
        return f;
      });
  add(MsgType::kCheckpointMarker,
      "1b00000097380b1d010606000000000000000000000000000000010c00000000000000",
      [] {
        Frame f;
        f.type = MsgType::kCheckpointMarker;
        f.request_id = 6;
        CheckpointMarker m{CheckpointPhase::kCommit, 12};
        EncodeCheckpointMarker(m, &f.body);
        return f;
      });
  add(MsgType::kResolveSsid,
      "1b000000d5b99b8e010707000000000000000000000000000000010400000000000000",
      [] {
        Frame f;
        f.type = MsgType::kResolveSsid;
        f.request_id = 7;
        ResolveSsidRequest m{true, 4};
        EncodeResolveSsidRequest(m, &f.body);
        return f;
      });
  add(MsgType::kFetchSystemTable,
      "1f0000001653ad83010808000000000000000000000000000000090000005f5f6d6574"
      "72696373",
      [] {
        Frame f;
        f.type = MsgType::kFetchSystemTable;
        f.request_id = 8;
        FetchSystemTableRequest m;
        m.table = "__metrics";
        EncodeFetchSystemTableRequest(m, &f.body);
        return f;
      });
  add(MsgType::kHelloReply,
      "220000009c6636d90140010000000000000000000000000000000200000004000000"
      "080000000c000000",
      [] {
        Frame f;
        f.type = MsgType::kHelloReply;
        f.request_id = 1;
        HelloReply m{2, 4, 8, 12};
        EncodeHelloReply(m, &f.body);
        return f;
      });
  add(MsgType::kRows,
      "460000008bd72d270141020000000000000000000000000000000500000000000000"
      "0100000002010000000000000001030000000000000001000000050000007072696365"
      "022a00000000000000",
      [] {
        Frame f;
        f.type = MsgType::kRows;
        f.request_id = 2;
        RowsReply m;
        m.rows_scanned = 5;
        WireRow r;
        r.key = kv::Value(int64_t{1});
        r.has_ssid = true;
        r.ssid = 3;
        r.value.Set("price", kv::Value(int64_t{42}));
        m.rows.push_back(std::move(r));
        EncodeRowsReply(m, &f.body);
        return f;
      });
  add(MsgType::kAggregateReply,
      "6e000000e19afe3701420400000000000000000000000000000003000000000000000"
      "100000000000000010000000100000002070000000000000001000000070000006175"
      "6374696f6e0207000000000000000100000002000000000000000"
      "11e000000000000000000000000000000000000000000",
      [] {
        Frame f;
        f.type = MsgType::kAggregateReply;
        f.request_id = 4;
        AggregateReply m;
        m.rows_scanned = 3;
        m.rows_returned = 1;
        WireGroup g;
        g.key.push_back(kv::Value(int64_t{7}));
        g.representative.Set("auction", kv::Value(int64_t{7}));
        sql::AggState s;
        s.count = 2;
        s.isum = 30;
        g.aggs.push_back(s);
        m.groups.push_back(std::move(g));
        EncodeAggregateReply(m, &f.body);
        return f;
      });
  add(MsgType::kAck, "1200000010437c08014305000000000000000000000000000000",
      [] {
        Frame f;
        f.type = MsgType::kAck;
        f.request_id = 5;
        return f;
      });
  add(MsgType::kResolveSsidReply,
      "1a00000069ad487c0144070000000000000000000000000000000400000000000000",
      [] {
        Frame f;
        f.type = MsgType::kResolveSsidReply;
        f.request_id = 7;
        ResolveSsidReply m{4};
        EncodeResolveSsidReply(m, &f.body);
        return f;
      });
  add(MsgType::kError,
      "27000000049d31f601450900000000000000000000000000000002100000006e6f2073"
      "75636820736e617073686f74",
      [] {
        Frame f;
        f.type = MsgType::kError;
        f.request_id = 9;
        EncodeStatusBody(Status::NotFound("no such snapshot"), &f.body);
        return f;
      });
  add(MsgType::kSystemTableReply,
      "b100000083ebad9d014608000000000000000000000000000000010000000200000004"
      "0000006e616d6504150000006e65742e7365727665722e727063732e68656c6c6f0500"
      "000076616c756502030000000000000001000000170000006e65742e7365727665722e"
      "68616e646c655f6e616e6f730300000000000000000000000200000000000000010000"
      "00000000000300000000000000460000000000000082000000000000000000000000c0"
      "724000401e18240a0600",
      [] {
        Frame f;
        f.type = MsgType::kSystemTableReply;
        f.request_id = 8;
        SystemTableReply m;
        kv::Object row;
        row.Set("name", kv::Value("net.server.rpcs.hello"));
        row.Set("value", kv::Value(int64_t{3}));
        m.rows.push_back(std::move(row));
        WireHistogram h;
        h.name = "net.server.handle_nanos";
        h.buckets = {0, 2, 1};
        h.count = 3;
        h.min = 70;
        h.max = 130;
        h.sum = 300.0;
        m.histograms.push_back(std::move(h));
        m.server_unix_micros = 1700000000000000;
        EncodeSystemTableReply(m, &f.body);
        return f;
      });
  // sqlint-golden-corpus-end
  return corpus;
}

TEST(WireCodec, GoldenCorpusCoversEveryMsgType) {
  const auto corpus = GoldenCorpus();
  std::set<uint8_t> covered;
  for (const GoldenFrame& g : corpus) {
    covered.insert(static_cast<uint8_t>(g.type));
  }
  for (uint8_t t = 0; t < 255; ++t) {
    EXPECT_EQ(IsKnownMsgType(t), covered.count(t) == 1)
        << "MsgType " << int{t} << " known/corpus mismatch";
  }
}

TEST(WireCodec, GoldenFramesEncodeByteExactly) {
  for (const GoldenFrame& g : GoldenCorpus()) {
    std::string encoded;
    EncodeFrame(g.build(), &encoded);
    EXPECT_EQ(ToHex(encoded), g.hex)
        << "wire-format drift for " << MsgTypeToString(g.type)
        << ": re-encoding the canonical message no longer reproduces the "
           "checked-in frame";
  }
}

TEST(WireCodec, GoldenFramesDecodeAndRoundTrip) {
  for (const GoldenFrame& g : GoldenCorpus()) {
    const std::string bytes = FromHex(g.hex);
    size_t consumed = 0;
    auto decoded = DecodeFrame(bytes, &consumed);
    ASSERT_TRUE(decoded.ok())
        << MsgTypeToString(g.type) << ": " << decoded.status();
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(decoded->type, g.type);
    std::string reencoded;
    EncodeFrame(*decoded, &reencoded);
    EXPECT_EQ(ToHex(reencoded), g.hex)
        << MsgTypeToString(g.type) << " does not round-trip byte-exactly";
  }
}

// ---------------------------------------------------------------------------
// Socket layer.

TEST(Socket, FrameRoundTripOverLoopback) {
  auto listen = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok()) << listen.status();
  auto port = LocalPort(*listen);
  ASSERT_TRUE(port.ok()) << port.status();

  std::thread echo([fd = *listen] {
    auto conn = AcceptConn(fd);
    if (!conn.ok()) return;
    auto frame = RecvFrame(*conn, 0);
    if (frame.ok()) {
      frame->request_id += 1;
      (void)SendFrame(*conn, *frame, 0);
    }
    CloseFd(*conn);
  });

  const int64_t deadline = trace::NowNanos() + 5'000'000'000;
  auto conn = DialTcp("127.0.0.1", *port, deadline);
  ASSERT_TRUE(conn.ok()) << conn.status();
  int64_t bytes_out = 0;
  ASSERT_TRUE(
      SendFrame(*conn, SamplePointLookupFrame(), deadline, &bytes_out).ok());
  EXPECT_GT(bytes_out, 0);
  int64_t bytes_in = 0;
  auto reply = RecvFrame(*conn, deadline, &bytes_in);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->request_id, 8u);
  EXPECT_EQ(bytes_in, bytes_out);
  CloseFd(*conn);
  echo.join();
  CloseFd(*listen);
}

// ---------------------------------------------------------------------------
// In-process cluster fixture.

constexpr int32_t kClusterNodes = 3;
constexpr int32_t kClusterPartitions = kv::kDefaultPartitionCount;
constexpr int64_t kClusterKeys = 150;

kv::Object OrderValue(int64_t key) {
  kv::Object o;
  o.Set("total", kv::Value((key * 37) % 1000));
  o.Set("region", kv::Value("r" + std::to_string(key % 4)));
  return o;
}

kv::Object OrderValueV2(int64_t key) {
  kv::Object o = OrderValue(key);
  o.Set("total", kv::Value(5000 + key));
  return o;
}

struct ClusterNode {
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<kv::Grid> grid;
  std::unique_ptr<state::SnapshotRegistry> registry;
  std::unique_ptr<query::QueryService> query;
  std::unique_ptr<NodeServer> server;
};

std::unique_ptr<ClusterNode> StartNode(int32_t id, int32_t node_count) {
  auto n = std::make_unique<ClusterNode>();
  n->metrics = std::make_unique<MetricsRegistry>();
  n->grid = std::make_unique<kv::Grid>(kv::GridConfig{
      .node_count = 1, .partition_count = kClusterPartitions,
      .backup_count = 0});
  n->registry = std::make_unique<state::SnapshotRegistry>(
      n->grid.get(),
      state::SnapshotRegistry::Options{.retained_versions = 2,
                                       .async_prune = false,
                                       .metrics = nullptr});
  n->query = std::make_unique<query::QueryService>(
      n->grid.get(), n->registry.get(), nullptr, n->metrics.get());
  n->query->set_node_id(id);
  NodeServerOptions opts;
  opts.node_id = id;
  opts.owned = kv::PartitionRangeOf(id, node_count, kClusterPartitions);
  opts.partition_count = kClusterPartitions;
  opts.query = n->query.get();
  opts.grid = n->grid.get();
  opts.registry = n->registry.get();
  opts.checkpoint = n->registry.get();
  opts.metrics = n->metrics.get();
  n->server = std::make_unique<NodeServer>(opts);
  SQ_CHECK(n->server->Start().ok()) << "node " << id << " failed to start";
  return n;
}

/// Three node servers, a coordinator QueryService routing through a
/// ClusterClient, and a single-process reference service holding the same
/// data for differential assertions.
struct TestCluster {
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  std::unique_ptr<MetricsRegistry> coord_metrics;
  std::unique_ptr<kv::Grid> coord_grid;
  std::unique_ptr<state::SnapshotRegistry> coord_registry;
  std::unique_ptr<ClusterClient> client;
  std::unique_ptr<query::QueryService> coordinator;

  std::unique_ptr<kv::Grid> ref_grid;
  std::unique_ptr<state::SnapshotRegistry> ref_registry;
  std::unique_ptr<query::QueryService> reference;

  ~TestCluster() {
    for (auto& n : nodes) {
      if (n && n->server) n->server->Stop();
    }
  }
};

std::unique_ptr<TestCluster> StartCluster(RpcOptions rpc = {},
                                          bool load_data = true) {
  auto tc = std::make_unique<TestCluster>();
  ClusterTopology topology;
  topology.partition_count = kClusterPartitions;
  for (int32_t i = 0; i < kClusterNodes; ++i) {
    tc->nodes.push_back(StartNode(i, kClusterNodes));
    topology.nodes.push_back(
        NodeAddress{i, "127.0.0.1", tc->nodes.back()->server->port()});
  }
  tc->coord_metrics = std::make_unique<MetricsRegistry>();
  tc->client = std::make_unique<ClusterClient>(topology, rpc,
                                               tc->coord_metrics.get());
  // The coordinator's own grid stays empty: with a router attached every
  // table read must be answered by the nodes, which is exactly what the
  // differential test wants to prove.
  tc->coord_grid = std::make_unique<kv::Grid>(kv::GridConfig{
      .node_count = 1, .partition_count = kClusterPartitions,
      .backup_count = 0});
  tc->coord_registry = std::make_unique<state::SnapshotRegistry>(
      tc->coord_grid.get(),
      state::SnapshotRegistry::Options{.retained_versions = 2,
                                       .async_prune = false,
                                       .metrics = nullptr});
  tc->coordinator = std::make_unique<query::QueryService>(
      tc->coord_grid.get(), tc->coord_registry.get(), nullptr,
      tc->coord_metrics.get());
  tc->coordinator->AttachCluster(tc->client.get());

  tc->ref_grid = std::make_unique<kv::Grid>(kv::GridConfig{
      .node_count = 1, .partition_count = kClusterPartitions,
      .backup_count = 0});
  tc->ref_registry = std::make_unique<state::SnapshotRegistry>(
      tc->ref_grid.get(),
      state::SnapshotRegistry::Options{.retained_versions = 2,
                                       .async_prune = false,
                                       .metrics = nullptr});
  tc->reference = std::make_unique<query::QueryService>(
      tc->ref_grid.get(), tc->ref_registry.get(), nullptr, nullptr);

  if (!load_data) return tc;

  // Cluster side loads over the wire (replication deltas + 2PC markers);
  // reference side writes the same data directly.
  std::vector<DeltaEntry> live;
  std::vector<DeltaEntry> snap1;
  std::vector<DeltaEntry> snap2;
  for (int64_t k = 0; k < kClusterKeys; ++k) {
    live.push_back(DeltaEntry{kv::Value(k), false, OrderValue(k)});
    snap1.push_back(DeltaEntry{kv::Value(k), false, OrderValue(k)});
    if (k % 3 == 0) {
      snap2.push_back(DeltaEntry{kv::Value(k), false, OrderValueV2(k)});
    }
  }
  SQ_CHECK(tc->client->Apply("orders", 0, live).ok());
  SQ_CHECK(tc->client->Apply("snapshot_orders", 1, snap1).ok());
  SQ_CHECK(tc->client->RunCheckpoint(1).ok());
  SQ_CHECK(tc->client->Apply("snapshot_orders", 2, snap2).ok());
  SQ_CHECK(tc->client->RunCheckpoint(2).ok());

  auto* ref_live = tc->ref_grid->GetOrCreateLiveMap("orders");
  auto* ref_snap = tc->ref_grid->GetOrCreateSnapshotTable("snapshot_orders");
  for (int64_t k = 0; k < kClusterKeys; ++k) {
    ref_live->Put(kv::Value(k), OrderValue(k));
    ref_snap->Write(1, kv::Value(k), OrderValue(k));
  }
  tc->ref_registry->OnCheckpointCommitted(1);
  for (int64_t k = 0; k < kClusterKeys; ++k) {
    if (k % 3 == 0) ref_snap->Write(2, kv::Value(k), OrderValueV2(k));
  }
  tc->ref_registry->OnCheckpointCommitted(2);
  return tc;
}

std::string RowsToString(const sql::ResultSet& rs) {
  std::string out;
  for (const auto& row : rs.rows) {
    out += "[";
    for (const auto& cell : row) out += cell.ToString() + ",";
    out += "] ";
  }
  return out;
}

/// Runs `sql` on the cluster coordinator and the single-process reference
/// and requires bit-identical results (columns, row order, cell values).
void ExpectSameResults(TestCluster* tc, const std::string& sql,
                       const query::QueryOptions& options) {
  auto cluster = tc->coordinator->Execute(sql, options);
  auto local = tc->reference->Execute(sql, options);
  ASSERT_TRUE(local.ok()) << sql << ": " << local.status();
  ASSERT_TRUE(cluster.ok()) << sql << ": " << cluster.status();
  EXPECT_EQ(cluster->columns, local->columns) << sql;
  EXPECT_EQ(cluster->rows, local->rows)
      << sql << "\n  cluster: " << RowsToString(*cluster)
      << "\n  local:   " << RowsToString(*local);
}

query::QueryOptions ReadCommitted() {
  query::QueryOptions options;
  options.isolation = state::IsolationLevel::kReadCommittedNoFailures;
  return options;
}

TEST(ClusterNet, HelloReportsIdentityAndOwnedRange) {
  auto tc = StartCluster({}, /*load_data=*/false);
  for (int32_t i = 0; i < kClusterNodes; ++i) {
    auto hello = tc->client->Hello(i);
    ASSERT_TRUE(hello.ok()) << hello.status();
    EXPECT_EQ(hello->node_id, i);
    const kv::PartitionRange range =
        kv::PartitionRangeOf(i, kClusterNodes, kClusterPartitions);
    EXPECT_EQ(hello->partition_begin, range.begin);
    EXPECT_EQ(hello->partition_end, range.end);
    EXPECT_EQ(hello->partition_count, kClusterPartitions);
  }
}

TEST(ClusterNet, DifferentialLiveQueries) {
  auto tc = StartCluster();
  ExpectSameResults(
      tc.get(),
      "SELECT count(*), sum(total), min(total), max(total), avg(total) "
      "FROM orders",
      ReadCommitted());
  ExpectSameResults(tc.get(),
                    "SELECT key, total FROM orders WHERE total > 300 "
                    "ORDER BY key",
                    ReadCommitted());
  ExpectSameResults(tc.get(),
                    "SELECT region, count(*), sum(total) FROM orders "
                    "GROUP BY region ORDER BY region",
                    ReadCommitted());
  ExpectSameResults(tc.get(), "SELECT key, total FROM orders WHERE key = 7",
                    ReadCommitted());
  ExpectSameResults(tc.get(),
                    "SELECT key, total FROM orders WHERE key IN (11, 3, 97)",
                    ReadCommitted());
}

TEST(ClusterNet, DifferentialSnapshotQueries) {
  auto tc = StartCluster();
  for (auto& n : tc->nodes) {
    EXPECT_EQ(n->registry->latest_committed(), 2);
  }
  const query::QueryOptions serializable;  // default isolation
  ExpectSameResults(tc.get(),
                    "SELECT count(*), sum(total) FROM snapshot_orders",
                    serializable);
  ExpectSameResults(tc.get(),
                    "SELECT key, total FROM snapshot_orders "
                    "WHERE total >= 5000 ORDER BY key",
                    serializable);
  ExpectSameResults(tc.get(),
                    "SELECT region, count(*), sum(total) FROM snapshot_orders "
                    "GROUP BY region ORDER BY region",
                    serializable);
  ExpectSameResults(tc.get(),
                    "SELECT count(DISTINCT region) FROM snapshot_orders",
                    serializable);
  // Explicit version pins: the ssid conjunct and the option both must
  // resolve over the wire (the coordinator's own registry is empty).
  ExpectSameResults(tc.get(),
                    "SELECT count(*), sum(total) FROM snapshot_orders "
                    "WHERE ssid = 1",
                    serializable);
  query::QueryOptions pinned = serializable;
  pinned.snapshot_id = 1;
  ExpectSameResults(tc.get(), "SELECT sum(total) FROM snapshot_orders",
                    pinned);
  // The multi-version view.
  ExpectSameResults(tc.get(),
                    "SELECT key, ssid FROM snapshot_orders__versions "
                    "ORDER BY key, ssid",
                    serializable);
}

TEST(ClusterNet, LiveTableNeedsWeakIsolationOnBothPaths) {
  auto tc = StartCluster();
  const query::QueryOptions serializable;
  auto cluster = tc->coordinator->Execute("SELECT count(*) FROM orders",
                                          serializable);
  auto local = tc->reference->Execute("SELECT count(*) FROM orders",
                                      serializable);
  EXPECT_FALSE(cluster.ok());
  EXPECT_FALSE(local.ok());
  EXPECT_EQ(cluster.status().code(), local.status().code());
}

TEST(ClusterNet, UnknownSnapshotIdFailsOnBothPaths) {
  auto tc = StartCluster();
  query::QueryOptions pinned;
  pinned.snapshot_id = 99;
  auto cluster = tc->coordinator->Execute(
      "SELECT count(*) FROM snapshot_orders", pinned);
  auto local = tc->reference->Execute(
      "SELECT count(*) FROM snapshot_orders", pinned);
  EXPECT_FALSE(cluster.ok());
  EXPECT_FALSE(local.ok());
}

TEST(ClusterNet, ReplicationDeltaAppliesPutsAndTombstones) {
  auto tc = StartCluster();
  std::vector<DeltaEntry> delta;
  delta.push_back(DeltaEntry{kv::Value(int64_t{5}), true, kv::Object{}});
  delta.push_back(
      DeltaEntry{kv::Value(int64_t{200}), false, OrderValue(200)});
  ASSERT_TRUE(tc->client->Apply("orders", 0, delta).ok());
  auto* ref_live = tc->ref_grid->GetOrCreateLiveMap("orders");
  ref_live->Remove(kv::Value(int64_t{5}));
  ref_live->Put(kv::Value(int64_t{200}), OrderValue(200));

  ExpectSameResults(tc.get(), "SELECT count(*), sum(total) FROM orders",
                    ReadCommitted());
  ExpectSameResults(tc.get(), "SELECT key FROM orders WHERE key = 5",
                    ReadCommitted());
  ExpectSameResults(tc.get(), "SELECT total FROM orders WHERE key = 200",
                    ReadCommitted());
}

TEST(ClusterNet, MisroutedPartitionGetsTypedOutOfRange) {
  auto tc = StartCluster({}, /*load_data=*/false);
  // A partition owned by node 2, asked of node 0: the server must refuse
  // rather than silently read its own (wrong) share of the keyspace.
  ScanPartitionRequest req;
  req.read.table = "orders";
  req.partition = tc->nodes[2]->server->options().owned.begin;
  std::string body;
  EncodeScanPartitionRequest(req, &body);
  std::string reply;
  Status s = tc->client->Call(0, MsgType::kScanPartition, body,
                              MsgType::kRows, &reply, trace::SpanContext{},
                              /*idempotent=*/true);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange) << s;
}

TEST(ClusterNet, DeadNodeYieldsTypedErrorNotAHang) {
  auto tc =
      StartCluster(RpcOptions{.deadline_ms = 250, .max_attempts = 2,
                              .backoff_ms = 10});
  tc->nodes[1]->server->Stop();
  tc->client->Disconnect();
  const int64_t t0 = trace::NowNanos();
  auto result = tc->coordinator->Execute("SELECT count(*) FROM orders",
                                         ReadCommitted());
  const int64_t elapsed_ms = (trace::NowNanos() - t0) / 1'000'000;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable() || result.status().IsTimeout())
      << result.status();
  EXPECT_LT(elapsed_ms, 60'000);
}

TEST(ClusterNet, SilentPeerHitsDeadline) {
  // A listener that accepts into its backlog but never answers: the RPC must
  // come back kTimeout at the per-attempt deadline, not hang.
  auto listen = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok()) << listen.status();
  auto port = LocalPort(*listen);
  ASSERT_TRUE(port.ok()) << port.status();

  ClusterTopology topology;
  topology.partition_count = kClusterPartitions;
  topology.nodes.push_back(NodeAddress{0, "127.0.0.1", *port});
  ClusterClient client(topology,
                       RpcOptions{.deadline_ms = 150, .max_attempts = 1,
                                  .backoff_ms = 1});
  const int64_t t0 = trace::NowNanos();
  auto hello = client.Hello(0);
  const int64_t elapsed_ms = (trace::NowNanos() - t0) / 1'000'000;
  ASSERT_FALSE(hello.ok());
  EXPECT_TRUE(hello.status().IsTimeout()) << hello.status();
  EXPECT_LT(elapsed_ms, 10'000);
  CloseFd(*listen);
}

TEST(ClusterNet, CheckpointAbortsWhenANodeIsDown) {
  auto tc =
      StartCluster(RpcOptions{.deadline_ms = 250, .max_attempts = 2,
                              .backoff_ms = 10});
  tc->nodes[2]->server->Stop();
  tc->client->Disconnect();
  Status s = tc->client->RunCheckpoint(3);
  EXPECT_TRUE(s.IsAborted()) << s;
  // The surviving nodes saw the abort marker: their latest committed
  // snapshot is unchanged and id 3 never becomes queryable.
  EXPECT_EQ(tc->nodes[0]->registry->latest_committed(), 2);
  EXPECT_EQ(tc->nodes[1]->registry->latest_committed(), 2);
  EXPECT_FALSE(tc->nodes[0]->registry->IsQueryable(3));
}

TEST(ClusterNet, MetricsAndNodeColumn) {
  auto tc = StartCluster();
  auto result = tc->coordinator->Execute(
      "SELECT count(*), sum(total) FROM orders", ReadCommitted());
  ASSERT_TRUE(result.ok()) << result.status();

  // Client side: RPCs by type, bytes both ways.
  EXPECT_GT(tc->coord_metrics->GetCounter("net.client.bytes_out")->Value(), 0);
  EXPECT_GT(tc->coord_metrics->GetCounter("net.client.bytes_in")->Value(), 0);
  const int64_t client_rpcs =
      tc->coord_metrics->GetCounter("net.client.rpcs.aggregate_partition")
          ->Value() +
      tc->coord_metrics->GetCounter("net.client.rpcs.scan_partition")->Value();
  EXPECT_GT(client_rpcs, 0);

  // Server side on every node: the scan fanned out across all owned ranges.
  for (auto& n : tc->nodes) {
    EXPECT_GT(n->metrics->GetCounter("net.server.bytes_in")->Value(), 0);
    EXPECT_GT(n->metrics->GetCounter("net.server.bytes_out")->Value(), 0);
    EXPECT_GT(n->metrics->GetCounter("net.server.connections")->Value(), 0);
    const int64_t server_rpcs =
        n->metrics->GetCounter("net.server.rpcs.aggregate_partition")
            ->Value() +
        n->metrics->GetCounter("net.server.rpcs.scan_partition")->Value();
    EXPECT_GT(server_rpcs, 0) << "node " << n->server->options().node_id;
  }

  // System tables stay attributable cluster-wide: every __metrics row of a
  // node carries its node id.
  ClusterNode* node1 = tc->nodes[1].get();
  node1->query->RegisterEngineIntrospection(nullptr, node1->metrics.get());
  auto rows = node1->query->ScanSystemObjects("__metrics");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_FALSE(rows->empty());
  for (const auto& row : *rows) {
    EXPECT_EQ(row.Get("node"), kv::Value(int64_t{1}));
  }
}

TEST(ClusterNet, RetriesAreCountedAndRecoverAfterReconnect) {
  auto tc = StartCluster();
  // Kill the cached connections mid-flight: the next idempotent RPC sees a
  // closed socket, retries on a fresh connection and still succeeds.
  ASSERT_TRUE(tc->coordinator
                  ->Execute("SELECT count(*) FROM orders", ReadCommitted())
                  .ok());
  tc->client->Disconnect();
  auto result = tc->coordinator->Execute("SELECT count(*) FROM orders",
                                         ReadCommitted());
  ASSERT_TRUE(result.ok()) << result.status();
}

// ---------------------------------------------------------------------------
// Cluster-wide observability: federated system tables, the __nodes health
// registry, per-type RPC telemetry, and the merged trace export.

/// The coordinator is given a node id outside the cluster's range so its own
/// locally-attributed rows are distinguishable from the federated ones.
constexpr int32_t kCoordinatorNodeId = 9;

TEST(ClusterNet, PerTypeRpcCountersRegisteredForEveryMsgType) {
  // Both constructors eagerly register one counter per known message type,
  // so `__metrics` always carries the full per-type set — a type that was
  // never sent still shows up as an explicit zero. sq-lint's wire pass
  // cross-checks that every MsgTypeToString name appears between the
  // markers below, so adding a message type without telemetry fails lint.
  auto tc = StartCluster({}, /*load_data=*/false);
  // sqlint-rpc-metrics-begin
  const std::vector<std::string> wire_names = {
      "hello",           "point_lookup",      "scan_partition",
      "aggregate_partition", "replication_delta", "checkpoint_marker",
      "resolve_ssid",    "fetch_system_table", "hello_reply",
      "rows",            "aggregate_reply",   "ack",
      "resolve_ssid_reply", "error",          "system_table_reply",
  };
  // sqlint-rpc-metrics-end
  auto names_of = [](MetricsRegistry* m) {
    std::set<std::string> names;
    for (const MetricSample& s : m->Collect()) names.insert(s.name);
    return names;
  };
  const std::set<std::string> client = names_of(tc->coord_metrics.get());
  const std::set<std::string> server = names_of(tc->nodes[0]->metrics.get());
  for (const std::string& n : wire_names) {
    EXPECT_EQ(client.count("net.client.rpcs." + n), 1u) << n;
    EXPECT_EQ(server.count("net.server.rpcs." + n), 1u) << n;
  }
  // The marker list is itself exhaustive against the enum.
  size_t known = 0;
  for (int t = 0; t < 256; ++t) {
    if (IsKnownMsgType(static_cast<uint8_t>(t))) ++known;
  }
  EXPECT_EQ(wire_names.size(), known);
}

TEST(ClusterNet, FederatedMetricsScanIsUnionOfPerNodeScans) {
  auto tc = StartCluster({}, /*load_data=*/false);
  tc->coordinator->set_node_id(kCoordinatorNodeId);
  tc->coordinator->RegisterEngineIntrospection(nullptr,
                                               tc->coord_metrics.get());
  for (int32_t i = 0; i < kClusterNodes; ++i) {
    ClusterNode* n = tc->nodes[i].get();
    n->query->RegisterEngineIntrospection(nullptr, n->metrics.get());
    n->metrics->GetCounter("test.sentinel")->Increment(1000 + i);
    for (int r = 0; r <= i; ++r) {
      n->metrics->GetHistogram("test.lat_nanos")->Record(1000 * (i + 1));
    }
  }

  // The coordinator-side scan must equal its local rows plus the union of
  // what each node reports for itself, row for row.
  auto fed = tc->coordinator->Execute(
      "SELECT node, value FROM __metrics WHERE name = 'test.sentinel' "
      "ORDER BY node");
  ASSERT_TRUE(fed.ok()) << fed.status();
  ASSERT_EQ(fed->rows.size(), 3u);  // the coordinator has no sentinel
  for (int32_t i = 0; i < kClusterNodes; ++i) {
    EXPECT_EQ(fed->rows[i][0], kv::Value(int64_t{i}));
    EXPECT_EQ(fed->rows[i][1], kv::Value(int64_t{1000 + i}));
    auto direct = tc->nodes[i]->query->ScanSystemObjects("__metrics");
    ASSERT_TRUE(direct.ok()) << direct.status();
    bool found = false;
    for (const kv::Object& row : *direct) {
      if (row.Get("name") != kv::Value("test.sentinel")) continue;
      found = true;
      EXPECT_EQ(row.Get("value"), fed->rows[i][1]);
    }
    EXPECT_TRUE(found) << "node " << i;
  }

  // Histogram columns are rebuilt on the coordinator from raw bucket
  // counts (percentiles never merge); count and exact max survive the trip.
  auto hist = tc->coordinator->Execute(
      "SELECT node, value, max FROM __metrics WHERE name = 'test.lat_nanos' "
      "ORDER BY node");
  ASSERT_TRUE(hist.ok()) << hist.status();
  ASSERT_EQ(hist->rows.size(), 3u);
  for (int32_t i = 0; i < kClusterNodes; ++i) {
    EXPECT_EQ(hist->rows[i][0], kv::Value(int64_t{i}));
    EXPECT_EQ(hist->rows[i][1], kv::Value(int64_t{i + 1}));  // sample count
    EXPECT_EQ(hist->rows[i][2], kv::Value(int64_t{1000 * (i + 1)}));
  }

  // Bit-stable ordering: a federated scan is still a deterministic query.
  auto again = tc->coordinator->Execute(
      "SELECT node, value FROM __metrics WHERE name = 'test.sentinel' "
      "ORDER BY node");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->rows, fed->rows);
}

TEST(ClusterNet, FederatedSpansScanReturnsDistributedTree) {
  auto tc = StartCluster({}, /*load_data=*/false);
  tc->coordinator->set_node_id(kCoordinatorNodeId);
  const uint64_t trace_id = trace::NewTraceId();
  {
    trace::ScopedSpan span(trace::Category::kQuery, "test.federated_span",
                           trace::RootContext(trace_id, /*forced=*/true));
  }

  // Every node serves the span under its own node id (the in-process nodes
  // share one trace journal; what the test proves is the fan-out, the merge
  // and the node attribution — multi-process stitching is covered by the
  // forked-cluster test).
  const std::string sql =
      "SELECT node, name FROM __spans WHERE trace_id = " +
      std::to_string(trace_id) + " ORDER BY node";
  auto result = tc->coordinator->Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 4u);  // nodes 0, 1, 2 + the coordinator
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result->rows[i][0], kv::Value(static_cast<int64_t>(i)));
    EXPECT_EQ(result->rows[i][1], kv::Value("test.federated_span"));
  }
  EXPECT_EQ(result->rows[3][0], kv::Value(int64_t{kCoordinatorNodeId}));

  auto again = tc->coordinator->Execute(sql);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->rows, result->rows);
}

TEST(ClusterNet, DeadNodeDegradesFederatedScanToTypedPartialResults) {
  // The deadline has headroom for parallel-ctest CPU contention: the dead
  // node fails fast on connect (kUnavailable), not by burning the deadline,
  // so a generous value does not slow the degradation path it bounds.
  auto tc = StartCluster(RpcOptions{.deadline_ms = 2000, .max_attempts = 2,
                                    .backoff_ms = 10},
                         /*load_data=*/false);
  tc->coordinator->set_node_id(kCoordinatorNodeId);
  const uint64_t trace_id = trace::NewTraceId();
  {
    trace::ScopedSpan span(trace::Category::kQuery, "test.partial_span",
                           trace::RootContext(trace_id, /*forced=*/true));
  }
  // Contact every node once so the kill is a transition from ok to
  // unreachable, not a node that was never seen.
  for (int32_t i = 0; i < kClusterNodes; ++i) {
    ASSERT_TRUE(tc->client->Hello(i).ok());
  }
  tc->nodes[1]->server->Stop();
  tc->client->Disconnect();

  // The scan degrades: the dead node's rows are missing, everything else is
  // present, and the whole thing returns within the RPC deadline budget —
  // never a hang, never a query-wide failure.
  const int64_t t0 = trace::NowNanos();
  auto result = tc->coordinator->Execute(
      "SELECT node FROM __spans WHERE trace_id = " +
      std::to_string(trace_id) + " ORDER BY node");
  const int64_t elapsed_ms = (trace::NowNanos() - t0) / 1'000'000;
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0], kv::Value(int64_t{0}));
  EXPECT_EQ(result->rows[1][0], kv::Value(int64_t{2}));
  EXPECT_EQ(result->rows[2][0], kv::Value(int64_t{kCoordinatorNodeId}));
  EXPECT_LT(elapsed_ms, 30'000);

  // Why the rows are missing is visible in __nodes: the dead node's health
  // row says unreachable while the survivors stay ok.
  auto health = tc->coordinator->Execute(
      "SELECT node, status FROM __nodes WHERE msg_type = '' ORDER BY node");
  ASSERT_TRUE(health.ok()) << health.status();
  ASSERT_EQ(health->rows.size(), 3u);
  EXPECT_EQ(health->rows[0][1], kv::Value("ok"));
  EXPECT_EQ(health->rows[1][1], kv::Value("unreachable"));
  EXPECT_EQ(health->rows[2][1], kv::Value("ok"));
}

TEST(ClusterNet, NodesHealthRegistryTracksLivenessAndRpcStats) {
  auto tc = StartCluster();
  ASSERT_TRUE(tc->coordinator
                  ->Execute("SELECT count(*) FROM orders", ReadCommitted())
                  .ok());

  auto health = tc->coordinator->Execute(
      "SELECT node, status, host, port, partition_begin, partition_end, "
      "rpcs, bytes_in, bytes_out FROM __nodes WHERE msg_type = '' "
      "ORDER BY node");
  ASSERT_TRUE(health.ok()) << health.status();
  ASSERT_EQ(health->rows.size(), 3u);
  for (int32_t i = 0; i < kClusterNodes; ++i) {
    const auto& row = health->rows[static_cast<size_t>(i)];
    EXPECT_EQ(row[0], kv::Value(int64_t{i}));
    EXPECT_EQ(row[1], kv::Value("ok"));
    EXPECT_EQ(row[2], kv::Value("127.0.0.1"));
    EXPECT_EQ(row[3],
              kv::Value(int64_t{tc->nodes[static_cast<size_t>(i)]
                                    ->server->port()}));
    const kv::PartitionRange owned =
        kv::PartitionRangeOf(i, kClusterNodes, kClusterPartitions);
    EXPECT_EQ(row[4], kv::Value(int64_t{owned.begin}));
    EXPECT_EQ(row[5], kv::Value(int64_t{owned.end}));
    EXPECT_GT(row[6].AsInt64(), 0) << "rpcs";
    EXPECT_GT(row[7].AsInt64(), 0) << "bytes_in";
    EXPECT_GT(row[8].AsInt64(), 0) << "bytes_out";
  }

  // Per-type breakdown rows: the loader's replication deltas are visible
  // with raw-bucket latency percentiles (p99 >= p50 > 0).
  auto by_type = tc->coordinator->Execute(
      "SELECT node, rpcs, rpc_p50_nanos, rpc_p99_nanos FROM __nodes "
      "WHERE msg_type = 'replication_delta' ORDER BY node");
  ASSERT_TRUE(by_type.ok()) << by_type.status();
  ASSERT_EQ(by_type->rows.size(), 3u);
  for (const auto& row : by_type->rows) {
    EXPECT_GT(row[1].AsInt64(), 0);
    EXPECT_GT(row[2].AsInt64(), 0);
    EXPECT_GE(row[3].AsInt64(), row[2].AsInt64());
  }

  // And the same liveness is exported as net.health.* metrics.
  EXPECT_EQ(tc->coord_metrics->GetGauge("net.health.alive.0")->Value(), 1);
  EXPECT_EQ(tc->coord_metrics->GetGauge("net.health.alive.1")->Value(), 1);
  EXPECT_EQ(tc->coord_metrics->GetGauge("net.health.alive.2")->Value(), 1);
}

// ---------------------------------------------------------------------------
// Merged trace export: structural RFC 8259 validation.

/// Minimal RFC 8259 recognizer (objects, arrays, strings with escape rules,
/// numbers, literals) — enough to prove the merged export parses under any
/// conforming consumer, with no JSON library dependency.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}

  bool Validate() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return p_ == s_.size();
  }

 private:
  bool Value() {
    if (p_ >= s_.size()) return false;
    switch (s_[p_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++p_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (p_ >= s_.size() || s_[p_] != '"' || !String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Peek(',')) return false;
    }
  }

  bool Array() {
    ++p_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Peek(',')) return false;
    }
  }

  bool String() {
    ++p_;  // '"'
    while (p_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[p_]);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are illegal
      if (c == '\\') {
        ++p_;
        if (p_ >= s_.size()) return false;
        const char e = s_[p_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[p_])) == 0) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++p_;
    }
    return false;
  }

  bool Number() {
    const size_t begin = p_;
    Peek('-');  // optional sign
    if (p_ >= s_.size() ||
        std::isdigit(static_cast<unsigned char>(s_[p_])) == 0) {
      return false;
    }
    if (s_[p_] == '0') {
      ++p_;
    } else {
      Digits();
    }
    if (p_ < s_.size() && s_[p_] == '.') {
      ++p_;
      if (p_ >= s_.size() ||
          std::isdigit(static_cast<unsigned char>(s_[p_])) == 0) {
        return false;
      }
      Digits();
    }
    if (p_ < s_.size() && (s_[p_] == 'e' || s_[p_] == 'E')) {
      ++p_;
      if (p_ < s_.size() && (s_[p_] == '+' || s_[p_] == '-')) ++p_;
      if (p_ >= s_.size() ||
          std::isdigit(static_cast<unsigned char>(s_[p_])) == 0) {
        return false;
      }
      Digits();
    }
    return p_ > begin;
  }

  void Digits() {
    while (p_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[p_])) != 0) {
      ++p_;
    }
  }

  bool Literal(std::string_view lit) {
    if (s_.substr(p_, lit.size()) != lit) return false;
    p_ += lit.size();
    return true;
  }

  bool Peek(char c) {
    if (p_ < s_.size() && s_[p_] == c) {
      ++p_;
      return true;
    }
    return false;
  }

  void SkipWs() {
    while (p_ < s_.size() && (s_[p_] == ' ' || s_[p_] == '\t' ||
                              s_[p_] == '\n' || s_[p_] == '\r')) {
      ++p_;
    }
  }

  std::string_view s_;
  size_t p_ = 0;
};

TEST(ClusterNet, MergedClusterTraceExportIsValidJson) {
  auto tc = StartCluster({}, /*load_data=*/false);
  tc->coordinator->set_node_id(kCoordinatorNodeId);
  {
    trace::ScopedSpan span(trace::Category::kQuery, "test.export_span",
                           trace::RootContext(trace::NewTraceId(),
                                              /*forced=*/true));
  }
  const std::string path =
      ::testing::TempDir() + "sq_cluster_trace_test.json";
  ASSERT_TRUE(tc->coordinator->ExportClusterTrace(path).ok());

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonValidator(json).Validate())
      << "merged export is not RFC 8259 JSON";

  // One process per node, the coordinator included, each with an auditable
  // clock-offset attribute on its spans.
  for (const char* needle :
       {"process_name", "\"node 0\"", "\"node 1\"", "\"node 2\"",
        "\"node 9\"", "clock_offset_micros", "test.export_span"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace sq::net
