#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "kv/grid.h"
#include "kv/map_store.h"
#include "kv/object.h"
#include "kv/partitioner.h"
#include "kv/snapshot_table.h"
#include "kv/value.h"

namespace sq::kv {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_EQ(Value(int64_t{5}).AsDouble(), 5.0);
  EXPECT_EQ(Value(2.9).AsInt64(), 2);
  EXPECT_EQ(Value().AsInt64(), 0);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_NE(Value(int64_t{2}), Value(2.5));
  EXPECT_EQ(Value(int64_t{2}).Hash(), Value(2.0).Hash());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(), Value(false));  // NULL sorts first
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(int64_t{0}).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_TRUE(Value(int64_t{1}).Truthy());
  EXPECT_TRUE(Value("x").Truthy());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ObjectTest, SetGetRemove) {
  Object o;
  EXPECT_TRUE(o.empty());
  o.Set("b", Value(int64_t{2}));
  o.Set("a", Value(int64_t{1}));
  EXPECT_EQ(o.Get("a").AsInt64(), 1);
  EXPECT_EQ(o.Get("b").AsInt64(), 2);
  EXPECT_TRUE(o.Get("missing").is_null());
  EXPECT_FALSE(o.Has("missing"));
  o.Set("a", Value(int64_t{10}));
  EXPECT_EQ(o.Get("a").AsInt64(), 10);
  EXPECT_EQ(o.size(), 2u);
  EXPECT_TRUE(o.Remove("a"));
  EXPECT_FALSE(o.Remove("a"));
  EXPECT_EQ(o.size(), 1u);
}

TEST(ObjectTest, FieldsAreSortedAndEqualityIsStructural) {
  Object a{{"x", Value(int64_t{1})}, {"y", Value("s")}};
  Object b;
  b.Set("y", Value("s"));
  b.Set("x", Value(int64_t{1}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fields()[0].first, "x");
  EXPECT_EQ(a.fields()[1].first, "y");
}

TEST(PartitionerTest, DeterministicAndInRange) {
  Partitioner p(271);
  for (int64_t i = 0; i < 1000; ++i) {
    const int32_t a = p.PartitionOf(Value(i));
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 271);
    EXPECT_EQ(a, p.PartitionOf(Value(i)));
  }
  EXPECT_EQ(p.PartitionOf(Value("rider-17")),
            p.PartitionOf(Value("rider-17")));
}

TEST(LiveMapTest, PutGetRemoveScan) {
  Partitioner part(8);
  LiveMap map("orders", &part);
  for (int64_t i = 0; i < 100; ++i) {
    Object o;
    o.Set("v", Value(i * 10));
    map.Put(Value(i), std::move(o));
  }
  EXPECT_EQ(map.Size(), 100u);
  EXPECT_EQ(map.Get(Value(int64_t{7}))->Get("v").AsInt64(), 70);
  EXPECT_FALSE(map.Get(Value(int64_t{1000})).has_value());
  EXPECT_TRUE(map.Remove(Value(int64_t{7})));
  EXPECT_FALSE(map.Remove(Value(int64_t{7})));
  int64_t sum = 0;
  map.ForEach([&sum](const Value& k, const Object& v) {
    (void)k;
    sum += v.Get("v").AsInt64();
  });
  EXPECT_EQ(sum, (99 * 100 / 2) * 10 - 70);
}

TEST(LiveMapTest, ConcurrentWritersDistinctKeys) {
  Partitioner part(16);
  LiveMap map("m", &part);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Object o;
        o.Set("v", Value(int64_t{1}));
        map.Put(Value(static_cast<int64_t>(t) * kPerThread + i),
                std::move(o));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(map.Size(), static_cast<size_t>(kThreads) * kPerThread);
}

TEST(LiveMapTest, KeyLevelLockingAllowsConcurrentReadsDuringWrites) {
  Partitioner part(4);
  LiveMap map("m", &part);
  Object o;
  o.Set("v", Value(int64_t{0}));
  map.Put(Value(int64_t{1}), o);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t v = 0;
    while (!stop.load()) {
      Object w;
      w.Set("v", Value(++v));
      map.Put(Value(int64_t{1}), std::move(w));
    }
  });
  // Readers must always observe a fully formed object (never torn).
  for (int i = 0; i < 20000; ++i) {
    auto got = map.Get(Value(int64_t{1}));
    ASSERT_TRUE(got.has_value());
    ASSERT_TRUE(got->Has("v"));
  }
  stop.store(true);
  writer.join();
}

TEST(SnapshotTableTest, VersionedReads) {
  Partitioner part(4);
  SnapshotTable table("snapshot_counts", &part);
  Object v1;
  v1.Set("count", Value(int64_t{4}));
  table.Write(1, Value(int64_t{10}), v1);
  Object v2;
  v2.Set("count", Value(int64_t{5}));
  table.Write(2, Value(int64_t{10}), v2);

  EXPECT_EQ(table.GetAt(Value(int64_t{10}), 1)->Get("count").AsInt64(), 4);
  EXPECT_EQ(table.GetAt(Value(int64_t{10}), 2)->Get("count").AsInt64(), 5);
  // Backward differential read: version 3 falls back to the newest <= 3.
  EXPECT_EQ(table.GetAt(Value(int64_t{10}), 3)->Get("count").AsInt64(), 5);
  // Before the first version: absent.
  EXPECT_FALSE(table.GetAt(Value(int64_t{10}), 0).has_value());
  // Exact lookups do not fall back.
  EXPECT_TRUE(table.GetExact(Value(int64_t{10}), 2).has_value());
  EXPECT_FALSE(table.GetExact(Value(int64_t{10}), 3).has_value());
}

TEST(SnapshotTableTest, TombstonesHideKeys) {
  Partitioner part(4);
  SnapshotTable table("t", &part);
  Object v;
  v.Set("x", Value(int64_t{1}));
  table.Write(1, Value(int64_t{5}), v);
  table.WriteTombstone(2, Value(int64_t{5}));
  EXPECT_TRUE(table.GetAt(Value(int64_t{5}), 1).has_value());
  EXPECT_FALSE(table.GetAt(Value(int64_t{5}), 2).has_value());
  EXPECT_FALSE(table.GetAt(Value(int64_t{5}), 9).has_value());
  size_t seen = 0;
  table.ScanAt(2, [&seen](const Value&, int64_t, const Object&) { ++seen; });
  EXPECT_EQ(seen, 0u);
}

TEST(SnapshotTableTest, ScanAtReconstructsIncrementalView) {
  Partitioner part(4);
  SnapshotTable table("t", &part);
  // Snapshot 1: keys 1..3; snapshot 2 (delta): only key 2 changed.
  for (int64_t k = 1; k <= 3; ++k) {
    Object v;
    v.Set("v", Value(k * 100));
    table.Write(1, Value(k), v);
  }
  Object updated;
  updated.Set("v", Value(int64_t{222}));
  table.Write(2, Value(int64_t{2}), updated);

  std::map<int64_t, std::pair<int64_t, int64_t>> view;  // key -> (ssid, v)
  table.ScanAt(2, [&view](const Value& key, int64_t ssid, const Object& v) {
    view[key.AsInt64()] = {ssid, v.Get("v").AsInt64()};
  });
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[1], std::make_pair(int64_t{1}, int64_t{100}));
  EXPECT_EQ(view[2], std::make_pair(int64_t{2}, int64_t{222}));
  EXPECT_EQ(view[3], std::make_pair(int64_t{1}, int64_t{300}));
}

TEST(SnapshotTableTest, DropSnapshotRemovesUncommittedData) {
  Partitioner part(2);
  SnapshotTable table("t", &part);
  Object v;
  v.Set("x", Value(int64_t{1}));
  table.Write(1, Value(int64_t{1}), v);
  table.Write(2, Value(int64_t{1}), v);
  table.DropSnapshot(2);
  EXPECT_TRUE(table.GetExact(Value(int64_t{1}), 1).has_value());
  EXPECT_FALSE(table.GetExact(Value(int64_t{1}), 2).has_value());
  EXPECT_EQ(table.EntryCount(), 1u);
}

TEST(SnapshotTableTest, CompactPrunesObsoleteVersions) {
  Partitioner part(2);
  SnapshotTable table("t", &part);
  Object v;
  for (int64_t ssid = 1; ssid <= 5; ++ssid) {
    v.Set("x", Value(ssid));
    table.Write(ssid, Value(int64_t{1}), v);
  }
  EXPECT_EQ(table.EntryCount(), 5u);
  const size_t removed = table.Compact(4);
  EXPECT_EQ(removed, 3u);  // versions 1..3 dropped; 4 is the base
  EXPECT_EQ(table.EntryCount(), 2u);
  EXPECT_EQ(table.GetAt(Value(int64_t{1}), 4)->Get("x").AsInt64(), 4);
  EXPECT_EQ(table.GetAt(Value(int64_t{1}), 5)->Get("x").AsInt64(), 5);
  EXPECT_FALSE(table.GetAt(Value(int64_t{1}), 3).has_value());
}

TEST(SnapshotTableTest, CompactDropsDeadTombstones) {
  Partitioner part(2);
  SnapshotTable table("t", &part);
  Object v;
  v.Set("x", Value(int64_t{1}));
  table.Write(1, Value(int64_t{9}), v);
  table.WriteTombstone(2, Value(int64_t{9}));
  table.Compact(3);
  EXPECT_EQ(table.EntryCount(), 0u);
  EXPECT_EQ(table.KeyCount(), 0u);
}

TEST(SnapshotTableTest, CompactWithTombstoneBaseKeepsNewerVersionsCorrect) {
  // Chain [write@1, tombstone@3, write@5], floor 4: the base "entry" at the
  // floor is the tombstone. It carries no data, so compaction may drop it —
  // but views at and above the floor must still read as deleted until the
  // ssid-5 rewrite.
  Partitioner part(2);
  SnapshotTable table("t", &part);
  Object v;
  v.Set("x", Value(int64_t{7}));
  table.Write(1, Value(int64_t{1}), v);
  table.WriteTombstone(3, Value(int64_t{1}));
  table.Write(5, Value(int64_t{1}), v);
  table.Compact(4);
  EXPECT_EQ(table.EntryCount(), 1u);  // only the ssid-5 write survives
  EXPECT_FALSE(table.GetAt(Value(int64_t{1}), 4).has_value());
  EXPECT_TRUE(table.GetAt(Value(int64_t{1}), 5).has_value());
}

TEST(SnapshotTableTest, CompactKeepsSoleOldEntryAsBase) {
  // A key written once, far below the floor: its entry is the base every
  // retained version still reads through — it must survive compaction with
  // its original ssid.
  Partitioner part(2);
  SnapshotTable table("t", &part);
  Object v;
  v.Set("x", Value(int64_t{42}));
  table.Write(1, Value(int64_t{1}), v);
  const size_t removed = table.Compact(10);
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(table.EntryCount(), 1u);
  int64_t entry_ssid = 0;
  table.ScanAt(10, [&entry_ssid](const Value&, int64_t ssid, const Object&) {
    entry_ssid = ssid;
  });
  EXPECT_EQ(entry_ssid, 1);
  EXPECT_EQ(table.GetAt(Value(int64_t{1}), 10)->Get("x").AsInt64(), 42);
}

TEST(SnapshotTableTest, CompactIsSafeAgainstConcurrentReads) {
  // Hammer: one writer committing new versions and compacting behind the
  // retention floor while readers reconstruct views of committed ssids.
  // Exercised for data races under TSan/ASan; the assertion is that every
  // read of a committed ssid sees a complete, plausible view.
  constexpr int64_t kKeys = 64;
  constexpr int64_t kSnapshots = 40;
  Partitioner part(4);
  SnapshotTable table("t", &part);
  std::atomic<int64_t> committed{0};
  std::atomic<bool> failed{false};

  // Seed version 1 so readers always have something committed.
  for (int64_t k = 0; k < kKeys; ++k) {
    Object v;
    v.Set("x", Value(int64_t{1}));
    table.Write(1, Value(k), v);
  }
  committed.store(1);

  std::thread writer([&table, &committed] {
    for (int64_t ssid = 2; ssid <= kSnapshots; ++ssid) {
      for (int64_t k = 0; k < kKeys; ++k) {
        Object v;
        v.Set("x", Value(ssid));
        table.Write(ssid, Value(k), v);
      }
      committed.store(ssid);
      if (ssid > 2) table.Compact(ssid - 1);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&table, &committed, &failed] {
      while (committed.load() < kSnapshots) {
        const int64_t ssid = committed.load();
        size_t rows = 0;
        bool bad_entry = false;
        table.ScanAt(ssid, [&](const Value&, int64_t entry_ssid,
                               const Object& value) {
          ++rows;
          const int64_t x = value.Get("x").AsInt64();
          // The entry must be a version some writer actually produced, no
          // newer than the snapshot being read.
          if (entry_ssid > ssid || x != entry_ssid || x < 1) {
            bad_entry = true;
          }
        });
        bool missing = false;
        for (int64_t k = 0; k < kKeys; k += 7) {
          if (!table.GetAt(Value(k), ssid).has_value()) missing = true;
        }
        // The writer compacts to floor committed-1; if it advanced past our
        // ssid mid-read, an incomplete view is expected retention behavior,
        // not a bug — only validate reads that stayed inside the window.
        if (ssid >= committed.load() - 1) {
          if (bad_entry || missing || rows != static_cast<size_t>(kKeys)) {
            failed.store(true);
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  // Final view after all racing is the full latest snapshot.
  size_t rows = 0;
  table.ScanAt(kSnapshots,
               [&rows](const Value&, int64_t, const Object&) { ++rows; });
  EXPECT_EQ(rows, static_cast<size_t>(kKeys));
}

TEST(SnapshotTableTest, ScanAllVersionsExposesEveryVersion) {
  Partitioner part(2);
  SnapshotTable table("t", &part);
  Object v;
  v.Set("x", Value(int64_t{1}));
  table.Write(1, Value(int64_t{1}), v);
  table.Write(2, Value(int64_t{1}), v);
  table.Write(2, Value(int64_t{2}), v);
  std::multiset<int64_t> ssids;
  table.ScanAllVersions(
      [&ssids](const Value&, int64_t ssid, const Object&) {
        ssids.insert(ssid);
      });
  EXPECT_EQ(ssids.count(1), 1u);
  EXPECT_EQ(ssids.count(2), 2u);
}

TEST(GridTest, CreatesAndFindsTables) {
  Grid grid(GridConfig{.node_count = 3, .partition_count = 16,
                       .backup_count = 1});
  EXPECT_EQ(grid.GetLiveMap("nope"), nullptr);
  LiveMap* m = grid.GetOrCreateLiveMap("orders");
  EXPECT_EQ(grid.GetOrCreateLiveMap("orders"), m);
  EXPECT_EQ(grid.GetLiveMap("orders"), m);
  SnapshotTable* s = grid.GetOrCreateSnapshotTable("snapshot_orders");
  EXPECT_EQ(grid.GetSnapshotTable("snapshot_orders"), s);
  EXPECT_EQ(grid.LiveMapNames().size(), 1u);
  EXPECT_EQ(grid.SnapshotTableNames().size(), 1u);
}

TEST(GridTest, PartitionOwnershipSpreadsAcrossNodes) {
  Grid grid(GridConfig{.node_count = 3, .partition_count = 12,
                       .backup_count = 1});
  std::set<int32_t> owners;
  for (int32_t p = 0; p < 12; ++p) {
    const int32_t n = grid.PrimaryNodeOf(p);
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 3);
    owners.insert(n);
    EXPECT_NE(grid.BackupNodeOf(p, 0), n);
  }
  EXPECT_EQ(owners.size(), 3u);
}

TEST(GridTest, FailoverPromotesBackupData) {
  Grid grid(GridConfig{.node_count = 3, .partition_count = 12,
                       .backup_count = 1});
  LiveMap* live = grid.GetOrCreateLiveMap("m");
  SnapshotTable* snap = grid.GetOrCreateSnapshotTable("snapshot_m");
  for (int64_t i = 0; i < 300; ++i) {
    Object o;
    o.Set("v", Value(i));
    live->Put(Value(i), o);
    snap->Write(1, Value(i), o);
  }
  ASSERT_TRUE(grid.KillNode(1).ok());
  EXPECT_FALSE(grid.IsNodeAlive(1));
  EXPECT_EQ(grid.AliveNodeCount(), 2);
  // All data still readable after losing a node's primaries.
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(live->Get(Value(i)).has_value()) << "live key " << i;
    ASSERT_TRUE(snap->GetAt(Value(i), 1).has_value()) << "snap key " << i;
  }
  EXPECT_FALSE(grid.KillNode(1).ok());  // already dead
  ASSERT_TRUE(grid.ReviveNode(1).ok());
  EXPECT_TRUE(grid.IsNodeAlive(1));
}

// Regression: FailPartitionPrimary used to clear the primary copy under one
// lock and only then copy the backup in under a second one, leaving a window
// where concurrent readers observed an *empty* partition — committed
// snapshot keys transiently vanishing, a snapshot-isolation violation. The
// promotion must be atomic with respect to readers.
TEST(SnapshotTableTest, FailoverNeverExposesEmptyPartitionToReaders) {
  const Partitioner partitioner(8);
  SnapshotTable table("snapshot_hammer", &partitioner, /*backup_count=*/1);
  constexpr int64_t kKeys = 256;
  Object o;
  o.Set("v", Value(int64_t{1}));
  for (int64_t i = 0; i < kKeys; ++i) table.Write(1, Value(i), o);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> missing{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        for (int64_t i = 0; i < kKeys; ++i) {
          if (!table.GetAt(Value(i), 1).has_value()) missing.fetch_add(1);
        }
      }
    });
  }
  readers.emplace_back([&] {
    while (!stop.load()) {
      int64_t seen = 0;
      table.ScanAt(1, [&seen](const Value&, int64_t, const Object&) {
        ++seen;
      });
      if (seen != kKeys) missing.fetch_add(kKeys - seen);
    }
  });

  // Hammer every partition's primary with repeated failovers while the
  // readers run.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  while (std::chrono::steady_clock::now() < deadline) {
    for (int32_t p = 0; p < partitioner.partition_count(); ++p) {
      table.FailPartitionPrimary(p);
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(missing.load(), 0)
      << "readers observed keys missing from a committed snapshot";
  // The data itself survived all the promotions.
  for (int64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(table.GetAt(Value(i), 1).has_value()) << "key " << i;
  }
}

TEST(SnapshotTableTest, FailoverWithoutBackupLosesPartitionData) {
  const Partitioner partitioner(4);
  SnapshotTable table("snapshot_nobackup", &partitioner, /*backup_count=*/0);
  Object o;
  o.Set("v", Value(int64_t{1}));
  for (int64_t i = 0; i < 64; ++i) table.Write(1, Value(i), o);
  for (int32_t p = 0; p < 4; ++p) table.FailPartitionPrimary(p);
  EXPECT_EQ(table.KeyCount(), 0u);
}

TEST(GridTest, RefusesToKillLastNode) {
  Grid grid(GridConfig{.node_count = 2, .partition_count = 4,
                       .backup_count = 1});
  ASSERT_TRUE(grid.KillNode(0).ok());
  EXPECT_FALSE(grid.KillNode(1).ok());
}

// Partition-parallel query execution fans one ForEachInPartition out per
// partition and assumes the union covers exactly ForEach's keyspace: every
// key visited once, in the partition the partitioner routes it to.
TEST(LiveMapTest, PerPartitionScansCoverExactlyTheFullKeyspace) {
  const Partitioner partitioner(7);
  LiveMap map("m", &partitioner);
  Object o;
  o.Set("v", Value(int64_t{1}));
  for (int64_t i = 0; i < 500; ++i) map.Put(Value(i), o);
  map.Put(Value("str-key"), o);
  map.Put(Value(2.5), o);

  std::set<Value> full;
  map.ForEach([&full](const Value& key, const Object&) {
    EXPECT_TRUE(full.insert(key).second) << key.ToString();
  });

  std::set<Value> partitioned;
  for (int32_t p = 0; p < partitioner.partition_count(); ++p) {
    map.ForEachInPartition(p, [&](const Value& key, const Object&) {
      EXPECT_EQ(map.partitioner().PartitionOf(key), p) << key.ToString();
      EXPECT_TRUE(partitioned.insert(key).second) << key.ToString();
    });
  }
  EXPECT_EQ(partitioned, full);
  EXPECT_EQ(partitioned.size(), map.Size());
}

TEST(SnapshotTableTest, PerPartitionScansCoverExactlyTheFullView) {
  const Partitioner partitioner(7);
  SnapshotTable table("snapshot_m", &partitioner);
  Object o;
  o.Set("v", Value(int64_t{1}));
  for (int64_t i = 0; i < 300; ++i) table.Write(1, Value(i), o);
  for (int64_t i = 0; i < 300; i += 3) table.Write(2, Value(i), o);
  for (int64_t i = 0; i < 300; i += 50) table.WriteTombstone(2, Value(i));

  for (int64_t ssid : {int64_t{1}, int64_t{2}}) {
    std::set<std::pair<Value, int64_t>> full;
    table.ScanAt(ssid, [&full](const Value& key, int64_t entry_ssid,
                               const Object&) {
      EXPECT_TRUE(full.insert({key, entry_ssid}).second);
    });
    std::set<std::pair<Value, int64_t>> partitioned;
    for (int32_t p = 0; p < partitioner.partition_count(); ++p) {
      table.ScanPartitionAt(
          p, ssid, [&](const Value& key, int64_t entry_ssid, const Object&) {
            EXPECT_EQ(table.partitioner().PartitionOf(key), p);
            EXPECT_TRUE(partitioned.insert({key, entry_ssid}).second);
          });
    }
    EXPECT_EQ(partitioned, full) << "ssid " << ssid;
  }

  std::set<std::pair<Value, int64_t>> all_versions;
  table.ScanAllVersions([&all_versions](const Value& key, int64_t ssid,
                                        const Object&) {
    EXPECT_TRUE(all_versions.insert({key, ssid}).second);
  });
  std::set<std::pair<Value, int64_t>> partitioned_versions;
  for (int32_t p = 0; p < partitioner.partition_count(); ++p) {
    table.ScanAllVersionsInPartition(
        p, [&](const Value& key, int64_t ssid, const Object&) {
          EXPECT_TRUE(partitioned_versions.insert({key, ssid}).second);
        });
  }
  EXPECT_EQ(partitioned_versions, all_versions);
}

}  // namespace
}  // namespace sq::kv
