#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dataflow/execution.h"
#include "dataflow/job_graph.h"
#include "dataflow/operators.h"
#include "kv/grid.h"
#include "kv/snapshot_table.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"
#include "storage/serde.h"
#include "trace/trace.h"

namespace sq::dataflow {
namespace {

using kv::Object;
using kv::Value;

OperatorFactory NumbersSource(int64_t n, int64_t keys, double rate = 0.0,
                              bool linger = false) {
  GeneratorSource::Options options;
  options.total_records = n;
  options.target_rate = rate;
  options.linger = linger;
  return MakeGeneratorSourceFactory(
      options, [keys](int64_t offset, OperatorContext* ctx) {
        Object payload;
        payload.Set("n", Value(offset));
        return Record::Data(Value(offset % keys), std::move(payload),
                            ctx->NowNanos());
      });
}

OperatorFactory CountOperator() {
  return MakeLambdaOperatorFactory(
      [](const Record& r, OperatorContext* ctx) {
        Object state = ctx->GetState(r.key).value_or(Object());
        const int64_t count = state.Get("count").AsInt64() + 1;
        state.Set("count", Value(count));
        ctx->PutState(r.key, state);
        Object out;
        out.Set("count", Value(count));
        ctx->Emit(Record::Data(r.key, std::move(out), r.source_nanos));
        return Status::OK();
      });
}

/// Byte-exact serialization of every snapshot table's committed view at
/// `ssid`, using the storage serde (the same encoding the durable log
/// writes). Two runs whose committed state differs in any key, value,
/// field order, or type produce different strings.
std::map<std::string, std::map<std::string, std::string>> SerializeCommitted(
    const kv::Grid& grid, int64_t ssid) {
  std::map<std::string, std::map<std::string, std::string>> tables;
  for (const std::string& name : grid.SnapshotTableNames()) {
    const kv::SnapshotTable* table = grid.GetSnapshotTable(name);
    if (table == nullptr) continue;
    auto& rows = tables[name];
    table->ScanAt(ssid, [&rows](const Value& key, int64_t,
                                const Object& value) {
      std::string key_bytes;
      storage::PutValue(&key_bytes, key);
      std::string value_bytes;
      storage::PutObject(&value_bytes, value);
      rows[key_bytes] = value_bytes;
    });
  }
  return tables;
}

/// Runs the keyed-count pipeline to quiescence in `mode` (bounded sources
/// that linger), checkpoints the settled state, and returns its byte-exact
/// serialization together with the job's checkpoint rows.
struct ModeRun {
  std::map<std::string, std::map<std::string, std::string>> state;
  std::vector<CheckpointRow> checkpoints;
};

ModeRun RunToQuiescenceAndCheckpoint(CheckpointMode mode, int64_t records,
                                     int64_t keys) {
  kv::Grid grid(kv::GridConfig{});
  state::SnapshotRegistry::Options registry_options;
  registry_options.async_prune = false;
  state::SnapshotRegistry registry(&grid, registry_options);

  JobGraph graph;
  const int32_t src = graph.AddSource(
      "src", 2, NumbersSource(records, keys, /*rate=*/0.0, /*linger=*/true));
  const int32_t count = graph.AddOperator("count", 2, CountOperator());
  EXPECT_TRUE(graph.Connect(src, count, EdgeKind::kKeyed).ok());

  state::SQueryConfig state_config;
  state_config.parallelism = 2;
  JobConfig config;
  config.checkpoint_interval_ms = 0;
  config.checkpoint_mode = mode;
  config.partitioner = &grid.partitioner();
  config.listener = &registry;
  config.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);

  ModeRun run;
  auto job = Job::Create(graph, std::move(config));
  EXPECT_TRUE(job.ok()) << job.status();
  if (!job.ok()) return run;
  EXPECT_TRUE((*job)->Start().ok());

  // Quiesce: every generated record has reached the count operator (the
  // sources linger, keeping the job checkpointable).
  for (int i = 0; i < 500 && (*job)->ProcessedCount("count") < records; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ((*job)->ProcessedCount("count"), records);

  auto ckpt = (*job)->TriggerCheckpoint();
  EXPECT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_TRUE((*job)->Stop().ok());

  if (ckpt.ok()) run.state = SerializeCommitted(grid, *ckpt);
  run.checkpoints = (*job)->RecentCheckpoints();
  return run;
}

// The tentpole's differential oracle: aligned (Fig. 3 marker alignment) and
// unaligned (COW capture + channel log) checkpointing must commit
// byte-identical state for the same input. Both funnel through the same
// WriteCaptured path, so any divergence is a protocol bug, not an encoding
// artifact.
TEST(CheckpointModesTest, AlignedAndUnalignedCommitIdenticalState) {
  constexpr int64_t kRecords = 20000;
  constexpr int64_t kKeys = 17;

  const ModeRun aligned =
      RunToQuiescenceAndCheckpoint(CheckpointMode::kAligned, kRecords, kKeys);
  const ModeRun unaligned = RunToQuiescenceAndCheckpoint(
      CheckpointMode::kUnaligned, kRecords, kKeys);

  ASSERT_FALSE(aligned.state.empty());
  ASSERT_EQ(aligned.state.size(), unaligned.state.size());
  for (const auto& [table, rows] : aligned.state) {
    auto it = unaligned.state.find(table);
    ASSERT_NE(it, unaligned.state.end()) << "missing table " << table;
    EXPECT_EQ(rows.size(), it->second.size()) << table;
    EXPECT_EQ(rows, it->second) << "state of " << table
                                << " diverges between modes";
  }

  // The __checkpoints rows label their mode.
  ASSERT_FALSE(aligned.checkpoints.empty());
  ASSERT_FALSE(unaligned.checkpoints.empty());
  EXPECT_EQ(aligned.checkpoints.back().mode, CheckpointMode::kAligned);
  EXPECT_EQ(unaligned.checkpoints.back().mode, CheckpointMode::kUnaligned);
  // Quiescent pipeline: nothing was in flight to overtake.
  EXPECT_EQ(unaligned.checkpoints.back().overtaken_records, 0);
}

// Exactly-once under crashes in unaligned mode: rollback + channel-log
// replay + deterministic source re-emission must reproduce the exact input
// distribution in operator state, with no loss and no double counting.
TEST(CheckpointModesTest, UnalignedRecoveryIsExactlyOnceOnState) {
  constexpr int64_t kRecords = 40000;
  constexpr int64_t kKeys = 13;

  JobGraph graph;
  CollectingSink::Collector collector;
  const int32_t src = graph.AddSource(
      "src", 2, NumbersSource(kRecords, kKeys, /*rate=*/150000.0));
  const int32_t count = graph.AddOperator("count", 2, CountOperator());
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, count, EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(count, sink, EdgeKind::kForward).ok());

  JobConfig config;
  config.checkpoint_interval_ms = 20;
  config.checkpoint_mode = CheckpointMode::kUnaligned;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_TRUE((*job)->InjectFailureAndRecover().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE((*job)->InjectFailureAndRecover().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  std::map<int64_t, int64_t> max_count;
  for (const Record& r : collector.Snapshot()) {
    auto& slot = max_count[r.key.AsInt64()];
    slot = std::max(slot, r.payload.Get("count").AsInt64());
  }
  for (int64_t k = 0; k < kKeys; ++k) {
    const int64_t expected = kRecords / kKeys + (k < kRecords % kKeys ? 1 : 0);
    EXPECT_EQ(max_count[k], expected) << "key " << k;
  }
}

int CountSpans(const char* name) {
  int n = 0;
  for (const trace::TraceSpan& span : trace::SnapshotSpans()) {
    if (std::string(span.name) == name) ++n;
  }
  return n;
}

// Acceptance criterion: unaligned traces contain no align_wait span (there
// is no barrier stall to measure) and do contain the capture-window
// channel_log span; aligned traces are the mirror image.
TEST(CheckpointModesTest, SpanNamesFollowTheMode) {
  for (const CheckpointMode mode :
       {CheckpointMode::kAligned, CheckpointMode::kUnaligned}) {
    trace::ClearForTest();

    JobGraph graph;
    const int32_t src =
        graph.AddSource("src", 1, NumbersSource(-1, 8, /*rate=*/20000.0));
    const int32_t count = graph.AddOperator("count", 2, CountOperator());
    ASSERT_TRUE(graph.Connect(src, count, EdgeKind::kKeyed).ok());

    JobConfig config;
    config.checkpoint_interval_ms = 0;
    config.checkpoint_mode = mode;
    auto job = Job::Create(graph, std::move(config));
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE((*job)->Start().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    auto ckpt = (*job)->TriggerCheckpoint();
    ASSERT_TRUE(ckpt.ok()) << ckpt.status();
    ASSERT_TRUE((*job)->Stop().ok());

    const int align_wait = CountSpans("align_wait");
    const int channel_log = CountSpans("channel_log");
    if (mode == CheckpointMode::kAligned) {
      EXPECT_GT(align_wait, 0) << "aligned checkpoint recorded no align_wait";
      EXPECT_EQ(channel_log, 0);
    } else {
      EXPECT_EQ(align_wait, 0)
          << "unaligned checkpoint still stalled on alignment";
      EXPECT_GT(channel_log, 0);
    }
  }
}

}  // namespace
}  // namespace sq::dataflow
