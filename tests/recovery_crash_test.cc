// Crash-injection tests for the durable snapshot log: a child process is
// SIGKILLed at arbitrary points of the append/commit loop (including
// mid-phase-1 and mid-fsync), and the parent verifies recovery lands exactly
// on the last committed snapshot with no torn record surviving. Plus the
// time-travel acceptance path: a snapshot id pruned from the in-memory
// retention window is still queryable — SQL and direct-object — from disk.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "dataflow/checkpoint.h"
#include "dataflow/execution.h"
#include "dataflow/job_graph.h"
#include "dataflow/operators.h"
#include "kv/grid.h"
#include "kv/object.h"
#include "kv/value.h"
#include "query/query_service.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"
#include "storage/durable_listener.h"
#include "storage/snapshot_log.h"

namespace sq::storage {
namespace {

namespace fs = std::filesystem;

constexpr int64_t kKeysPerSnapshot = 32;
constexpr int32_t kChildPartitions = 4;

kv::Object SnapshotValue(int64_t ssid, int64_t key) {
  kv::Object o;
  o.Set("v", kv::Value(ssid * 1000 + key));
  return o;
}

std::string MakeTempDir() {
  std::string tmpl = "/tmp/sq_crash_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  SQ_CHECK(dir != nullptr) << "mkdtemp failed";
  return dir;
}

/// Child body: reopen the log in `dir`, resume from the recovered latest
/// id, and append+commit full 32-key snapshots forever. Writes one byte to
/// `ready_fd` after each commit so the parent can time its SIGKILL after at
/// least one durable snapshot exists. Runs until killed.
[[noreturn]] void RunCommitLoopChild(const std::string& dir, int ready_fd) {
  auto log = SnapshotLog::Open(
      {.dir = dir, .flush_bytes = 1, .async_compact = false});
  if (!log.ok()) _exit(2);
  int64_t id = (*log)->LatestDurable() + 1;
  for (;; ++id) {
    for (int32_t p = 0; p < kChildPartitions; ++p) {
      std::vector<SnapshotLog::DeltaEntry> entries;
      for (int64_t k = p; k < kKeysPerSnapshot; k += kChildPartitions) {
        entries.push_back(SnapshotLog::DeltaEntry{kv::Value(k), false,
                                                  SnapshotValue(id, k)});
      }
      if (!(*log)->AppendDelta("snapshot_orders", id, p, entries).ok()) {
        _exit(3);
      }
    }
    if (!(*log)->Commit(id).ok()) _exit(4);
    char byte = 1;
    (void)::write(ready_fd, &byte, 1);
  }
}

/// Verifies every committed id in `log` reconstructs to exactly the 32 keys
/// the child wrote for it, and that recovery metadata is self-consistent.
void VerifyRecoveredLog(const SnapshotLog& log) {
  const std::vector<int64_t> committed = log.CommittedIds();
  ASSERT_FALSE(committed.empty());
  EXPECT_EQ(log.recovery_info().latest_committed, committed.back());
  EXPECT_EQ(log.recovery_info().committed_count,
            static_cast<int64_t>(committed.size()));
  for (const int64_t id : committed) {
    std::map<int64_t, int64_t> view;
    ASSERT_TRUE(log.ScanSnapshot("snapshot_orders", id,
                                 [&view](int32_t, const kv::Value& key,
                                         int64_t, const kv::Object& value) {
                                   view[key.int64_value()] =
                                       value.Get("v").int64_value();
                                 })
                    .ok())
        << "ssid " << id;
    ASSERT_EQ(view.size(), static_cast<size_t>(kKeysPerSnapshot))
        << "ssid " << id;
    for (int64_t k = 0; k < kKeysPerSnapshot; ++k) {
      EXPECT_EQ(view.at(k), id * 1000 + k) << "ssid " << id << " key " << k;
    }
  }
}

TEST(RecoveryCrashTest, SigkillMidCommitLoopRecoversToLastCommitted) {
  const std::string dir = MakeTempDir();
  int64_t previous_latest = 0;
  // Three kill/recover cycles over the same directory: each child resumes
  // from the previous recovery point, so later cycles also prove that a
  // recovered log accepts new commits.
  for (int cycle = 0; cycle < 3; ++cycle) {
    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      ::close(pipe_fds[0]);
      RunCommitLoopChild(dir, pipe_fds[1]);  // never returns
    }
    ::close(pipe_fds[1]);
    // Wait for the first commit of this cycle, then let the child run a
    // little longer so the kill lands at an arbitrary protocol point
    // (mid-append, mid-flush, mid-fsync, between records).
    char byte = 0;
    ASSERT_EQ(::read(pipe_fds[0], &byte, 1), 1);
    ::usleep(20000 + 15000 * cycle);
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int wait_status = 0;
    ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wait_status));
    ::close(pipe_fds[0]);

    auto log = SnapshotLog::Open({.dir = dir});
    ASSERT_TRUE(log.ok()) << log.status();
    VerifyRecoveredLog(**log);
    // Progress is monotonic across cycles and strictly grows (the child
    // committed at least one snapshot before the kill).
    EXPECT_GT((*log)->LatestDurable(), previous_latest);
    previous_latest = (*log)->LatestDurable();
  }
  fs::remove_all(dir);
}

TEST(RecoveryCrashTest, SigkillDuringListenerPhase1RecoversCleanly) {
  const std::string dir = MakeTempDir();
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipe_fds[0]);
    // Full engine-shaped write path: grid snapshot table -> listener chain.
    kv::Grid grid(kv::GridConfig{.node_count = 1, .partition_count = 8,
                                 .backup_count = 0});
    auto log = SnapshotLog::Open({.dir = dir, .flush_bytes = 1});
    if (!log.ok()) _exit(2);
    state::SnapshotRegistry registry(
        &grid, {.retained_versions = 2, .async_prune = false});
    DurableSnapshotListener durable(&grid, log->get());
    dataflow::CheckpointListenerChain chain({&durable, &registry});
    kv::SnapshotTable* table =
        grid.GetOrCreateSnapshotTable("snapshot_orders");
    for (int64_t id = 1;; ++id) {
      for (int64_t k = 0; k < kKeysPerSnapshot; ++k) {
        table->Write(id, kv::Value(k), SnapshotValue(id, k));
      }
      chain.OnCheckpointPrepared(id);
      chain.OnCheckpointCommitted(id);
      char byte = 1;
      (void)::write(pipe_fds[1], &byte, 1);
    }
  }
  ::close(pipe_fds[1]);
  char byte = 0;
  ASSERT_EQ(::read(pipe_fds[0], &byte, 1), 1);
  ::usleep(30000);
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ::close(pipe_fds[0]);

  auto log = SnapshotLog::Open({.dir = dir});
  ASSERT_TRUE(log.ok()) << log.status();
  VerifyRecoveredLog(**log);

  // The recovered log rebuilds a fresh grid to the recovery point.
  kv::Grid grid(kv::GridConfig{.node_count = 1, .partition_count = 8,
                               .backup_count = 0});
  auto info = (*log)->ReplayInto(&grid, /*retained_versions=*/2);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->latest_committed, (*log)->LatestDurable());
  kv::SnapshotTable* table = grid.GetSnapshotTable("snapshot_orders");
  ASSERT_NE(table, nullptr);
  for (int64_t k = 0; k < kKeysPerSnapshot; ++k) {
    auto value = table->GetAt(kv::Value(k), info->latest_committed);
    ASSERT_TRUE(value.has_value()) << "key " << k;
    EXPECT_EQ(value->Get("v").int64_value(),
              info->latest_committed * 1000 + k);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Unaligned checkpointing under SIGKILL: the channel log must survive on
// disk and balance the snapshot cut exactly.

constexpr int64_t kUnalignedKeys = 11;

/// Child body for the unaligned crash test: a live two-source -> keyed-count
/// job with unaligned checkpoints and the full durable chain, checkpointing
/// in a tight loop. Signals the parent once a *committed* checkpoint
/// actually overtook in-flight records (so a non-empty channel log is on
/// disk), then keeps checkpointing until SIGKILLed.
[[noreturn]] void RunUnalignedJobChild(const std::string& dir, int ready_fd) {
  kv::Grid grid(kv::GridConfig{.node_count = 1, .partition_count = 8,
                               .backup_count = 0});
  auto log = SnapshotLog::Open(
      {.dir = dir, .flush_bytes = 1, .async_compact = false});
  if (!log.ok()) _exit(2);
  state::SnapshotRegistry registry(
      &grid, {.retained_versions = 2, .async_prune = false});
  DurableSnapshotListener durable(&grid, log->get());
  dataflow::CheckpointListenerChain chain({&durable, &registry});

  dataflow::JobGraph graph;
  dataflow::GeneratorSource::Options options;
  options.total_records = -1;  // unbounded; the parent's SIGKILL ends it
  options.target_rate = 200000.0;
  const int32_t src = graph.AddSource(
      "src", 2,
      dataflow::MakeGeneratorSourceFactory(
          options, [](int64_t offset, dataflow::OperatorContext* ctx) {
            kv::Object payload;
            payload.Set("n", kv::Value(offset));
            return dataflow::Record::Data(kv::Value(offset % kUnalignedKeys),
                                          std::move(payload), ctx->NowNanos());
          }));
  const int32_t count = graph.AddOperator(
      "count", 2,
      dataflow::MakeLambdaOperatorFactory(
          [](const dataflow::Record& r, dataflow::OperatorContext* ctx) {
            kv::Object state = ctx->GetState(r.key).value_or(kv::Object());
            state.Set("count", kv::Value(state.Get("count").AsInt64() + 1));
            ctx->PutState(r.key, std::move(state));
            return Status::OK();
          }));
  if (!graph.Connect(src, count, dataflow::EdgeKind::kKeyed).ok()) _exit(3);

  state::SQueryConfig state_config;
  state_config.parallelism = 2;
  dataflow::JobConfig config;
  config.checkpoint_interval_ms = 0;
  config.checkpoint_mode = dataflow::CheckpointMode::kUnaligned;
  config.partitioner = &grid.partitioner();
  config.listener = &chain;
  config.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);
  auto job = dataflow::Job::Create(graph, std::move(config));
  if (!job.ok()) _exit(4);
  if (!(*job)->Start().ok()) _exit(5);

  bool signaled = false;
  for (;;) {
    if (!(*job)->TriggerCheckpoint().ok()) continue;
    if (signaled) continue;
    for (const dataflow::CheckpointRow& row : (*job)->RecentCheckpoints()) {
      if (row.committed && row.overtaken_records > 0) {
        char byte = 1;
        (void)::write(ready_fd, &byte, 1);
        signaled = true;
        break;
      }
    }
  }
}

// SIGKILL a live unaligned job mid-checkpoint-loop, reopen the log, and
// prove the recovered cut is consistent *from disk alone*. The generator
// persists per-instance emit counts under "offset", the counter counts every
// record it processed, and the channel log holds the records that overtook
// the barrier — so for every durable id L:
//
//   sum(source offsets at L) == sum(counts at L) + |channel_log(L)|
//
// Nothing lost, nothing double-counted: the snapshot plus its channel log
// account for exactly the records the sources had emitted at their capture
// points. Then a cold-restarted job is seeded with the recovered channel log
// via StageChannelLogReplay and must re-process every staged record.
TEST(RecoveryCrashTest, SigkillUnalignedJobLeavesReplayableChannelLog) {
  const std::string dir = MakeTempDir();
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipe_fds[0]);
    RunUnalignedJobChild(dir, pipe_fds[1]);  // never returns
  }
  ::close(pipe_fds[1]);
  char byte = 0;
  ASSERT_EQ(::read(pipe_fds[0], &byte, 1), 1);
  ::usleep(25000);  // let more checkpoints land so the kill hits mid-flight
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  ::close(pipe_fds[0]);

  auto log = SnapshotLog::Open({.dir = dir});
  ASSERT_TRUE(log.ok()) << log.status();
  // The child only signals after a checkpoint with a non-empty channel log
  // committed, so recovery must have found durable channel-log records.
  EXPECT_GT((*log)->recovery_info().channel_log_records, 0);

  const std::vector<int64_t> committed = (*log)->CommittedIds();
  ASSERT_FALSE(committed.empty());
  int64_t best_id = 0;  // durable id with the largest channel log
  int64_t best_in_flight = 0;
  for (const int64_t id : committed) {
    int64_t emitted = 0;
    ASSERT_TRUE((*log)
                    ->ScanSnapshot("snapshot_src", id,
                                   [&emitted](int32_t, const kv::Value&,
                                              int64_t,
                                              const kv::Object& value) {
                                     emitted +=
                                         value.Get("offset").int64_value();
                                   })
                    .ok())
        << "ssid " << id;
    int64_t counted = 0;
    ASSERT_TRUE((*log)
                    ->ScanSnapshot("snapshot_count", id,
                                   [&counted](int32_t, const kv::Value&,
                                              int64_t,
                                              const kv::Object& value) {
                                     counted +=
                                         value.Get("count").int64_value();
                                   })
                    .ok())
        << "ssid " << id;
    int64_t in_flight = 0;
    ASSERT_TRUE(
        (*log)
            ->ScanChannelLog(
                id,
                [&in_flight](const std::string& vertex, int32_t instance,
                             const SnapshotLog::LoggedRecord& record) {
                  EXPECT_EQ(vertex, "count");
                  EXPECT_GE(instance, 0);
                  EXPECT_LT(instance, 2);
                  const int64_t key = record.key.int64_value();
                  EXPECT_GE(key, 0);
                  EXPECT_LT(key, kUnalignedKeys);
                  // The logged record round-trips intact through the serde.
                  EXPECT_EQ(record.payload.Get("n").int64_value() %
                                kUnalignedKeys,
                            key);
                  ++in_flight;
                })
            .ok())
        << "ssid " << id;
    EXPECT_EQ(emitted, counted + in_flight)
        << "ssid " << id << " does not balance: " << emitted
        << " emitted vs " << counted << " counted + " << in_flight
        << " logged";
    if (in_flight > best_in_flight) {
      best_in_flight = in_flight;
      best_id = id;
    }
  }
  ASSERT_GT(best_in_flight, 0);

  // Channel logs are only addressable for durable ids.
  const Status missing = (*log)->ScanChannelLog(
      committed.back() + 1,
      [](const std::string&, int32_t, const SnapshotLog::LoggedRecord&) {});
  EXPECT_TRUE(missing.IsNotFound()) << missing;

  // Cold-restart replay: stage the recovered channel log into a fresh job
  // (same shape, sources bounded to zero so only staged records flow) and
  // verify every record is re-delivered to its counter before shutdown.
  dataflow::JobGraph graph;
  dataflow::GeneratorSource::Options options;
  options.total_records = 0;
  const int32_t src = graph.AddSource(
      "src", 2,
      dataflow::MakeGeneratorSourceFactory(
          options, [](int64_t offset, dataflow::OperatorContext* ctx) {
            return dataflow::Record::Data(kv::Value(offset), kv::Object(),
                                          ctx->NowNanos());
          }));
  const int32_t count = graph.AddOperator(
      "count", 2,
      dataflow::MakeLambdaOperatorFactory(
          [](const dataflow::Record&, dataflow::OperatorContext*) {
            return Status::OK();
          }));
  ASSERT_TRUE(graph.Connect(src, count, dataflow::EdgeKind::kKeyed).ok());
  dataflow::JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = dataflow::Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok()) << job.status();

  std::map<int32_t, std::vector<dataflow::Record>> staged;
  ASSERT_TRUE((*log)
                  ->ScanChannelLog(
                      best_id,
                      [&staged](const std::string&, int32_t instance,
                                const SnapshotLog::LoggedRecord& r) {
                        dataflow::Record record = dataflow::Record::Data(
                            r.key, r.payload, r.source_nanos);
                        record.from_instance = r.from_instance;
                        staged[instance].push_back(std::move(record));
                      })
                  .ok());
  for (auto& [instance, records] : staged) {
    ASSERT_TRUE(
        (*job)->StageChannelLogReplay("count", instance, std::move(records))
            .ok());
  }
  ASSERT_TRUE((*job)->Start().ok());
  // Staging is rejected once the job runs.
  EXPECT_FALSE((*job)->StageChannelLogReplay("count", 0, {}).ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  EXPECT_EQ((*job)->ProcessedCount("count"), best_in_flight);

  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Time travel beyond the in-memory retention window (the acceptance path:
// a query for a pruned ssid used to return NotFound; with durable storage
// attached it returns the rows from disk).

class TimeTravelTest : public ::testing::Test {
 protected:
  TimeTravelTest()
      : dir_(MakeTempDir()),
        grid_(kv::GridConfig{.node_count = 2, .partition_count = 8,
                             .backup_count = 0}),
        registry_(&grid_, {.retained_versions = 2, .async_prune = false}),
        service_(&grid_, &registry_) {
    auto log = SnapshotLog::Open({.dir = dir_});
    SQ_CHECK(log.ok()) << log.status().ToString();
    log_ = std::move(*log);
    durable_ = std::make_unique<DurableSnapshotListener>(&grid_, log_.get());
    chain_.Add(durable_.get());
    chain_.Add(&registry_);

    state::SQueryConfig config;
    config.parallelism = 1;
    config.incremental = true;
    store_ = std::make_unique<state::SQueryStateStore>(&grid_, "counts", 0,
                                                       config);
    // Five committed checkpoints of a two-key state; retention keeps {4, 5}
    // in memory, the log keeps all five on disk.
    for (int64_t ckpt = 1; ckpt <= 5; ++ckpt) {
      for (int64_t key = 0; key < 2; ++key) {
        kv::Object o;
        o.Set("v", kv::Value(ckpt * 10 + key));
        store_->Put(kv::Value(key), o);
      }
      SQ_CHECK_OK(store_->SnapshotTo(ckpt));
      chain_.OnCheckpointPrepared(ckpt);
      chain_.OnCheckpointCommitted(ckpt);
    }
  }

  ~TimeTravelTest() override {
    store_ = nullptr;
    durable_ = nullptr;
    log_ = nullptr;
    fs::remove_all(dir_);
  }

  std::string dir_;
  kv::Grid grid_;
  state::SnapshotRegistry registry_;
  query::QueryService service_;
  std::unique_ptr<SnapshotLog> log_;
  std::unique_ptr<DurableSnapshotListener> durable_;
  dataflow::CheckpointListenerChain chain_;
  std::unique_ptr<state::SQueryStateStore> store_;
};

TEST_F(TimeTravelTest, PrunedSsidIsNotFoundWithoutDurableStorage) {
  auto result =
      service_.Execute("SELECT v FROM snapshot_counts WHERE ssid=1");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(TimeTravelTest, SqlQueryFallsThroughToDiskForPrunedSsid) {
  service_.AttachDurableStorage(log_.get());
  // In-retention ids still serve from memory.
  auto recent = service_.Execute(
      "SELECT SUM(v) AS s FROM snapshot_counts WHERE ssid=5");
  ASSERT_TRUE(recent.ok()) << recent.status();
  EXPECT_EQ(recent->At(0, "s").AsInt64(), 50 + 51);
  // Pruned ids serve from the log with the same row contents.
  for (int64_t ssid = 1; ssid <= 3; ++ssid) {
    auto result = service_.Execute(
        "SELECT SUM(v) AS s FROM snapshot_counts WHERE ssid=" +
        std::to_string(ssid));
    ASSERT_TRUE(result.ok()) << "ssid " << ssid << ": " << result.status();
    EXPECT_EQ(result->At(0, "s").AsInt64(), ssid * 20 + 1) << "ssid " << ssid;
  }
  // A never-committed id is still an error.
  auto missing =
      service_.Execute("SELECT v FROM snapshot_counts WHERE ssid=99");
  EXPECT_FALSE(missing.ok());
}

TEST_F(TimeTravelTest, DirectObjectInterfaceFallsThroughToDisk) {
  service_.AttachDurableStorage(log_.get());
  auto rows = service_.GetSnapshotObjects("counts",
                                          {kv::Value(int64_t{0}),
                                           kv::Value(int64_t{1})},
                                          /*ssid=*/2);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  std::map<int64_t, int64_t> got;
  for (const auto& [key, value] : *rows) {
    got[key.int64_value()] = value.Get("v").int64_value();
  }
  EXPECT_EQ(got, (std::map<int64_t, int64_t>{{0, 20}, {1, 21}}));
}

TEST_F(TimeTravelTest, SurvivesColdRestartOfTheWholeStack) {
  // Tear down everything but the directory, as after a process restart.
  store_ = nullptr;
  durable_ = nullptr;
  log_ = nullptr;

  auto log = SnapshotLog::Open({.dir = dir_});
  ASSERT_TRUE(log.ok()) << log.status();
  kv::Grid grid(kv::GridConfig{.node_count = 2, .partition_count = 8,
                               .backup_count = 0});
  auto info = (*log)->ReplayInto(&grid, /*retained_versions=*/2);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->latest_committed, 5);

  state::SnapshotRegistry registry(
      &grid, {.retained_versions = 2, .async_prune = false});
  registry.RestoreCommitted((*log)->CommittedIds());
  query::QueryService service(&grid, &registry);
  service.AttachDurableStorage(log->get());

  auto recent = service.Execute(
      "SELECT SUM(v) AS s FROM snapshot_counts WHERE ssid=5");
  ASSERT_TRUE(recent.ok()) << recent.status();
  EXPECT_EQ(recent->At(0, "s").AsInt64(), 50 + 51);
  auto old = service.Execute(
      "SELECT SUM(v) AS s FROM snapshot_counts WHERE ssid=2");
  ASSERT_TRUE(old.ok()) << old.status();
  EXPECT_EQ(old->At(0, "s").AsInt64(), 20 + 21);
}

}  // namespace
}  // namespace sq::storage
