#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "dataflow/execution.h"
#include "dataflow/operators.h"
#include "kv/grid.h"
#include "nexmark/nexmark.h"
#include "query/query_service.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"

namespace sq::nexmark {
namespace {

using kv::Value;

TEST(NexmarkGeneratorTest, DeterministicBids) {
  NexmarkConfig config;
  const Bid a = BidAt(config, 12345);
  const Bid b = BidAt(config, 12345);
  EXPECT_EQ(a.auction_id, b.auction_id);
  EXPECT_EQ(a.price, b.price);
  EXPECT_EQ(a.seller_id, a.auction_id % config.num_sellers);
}

TEST(NexmarkGeneratorTest, AuctionsCloseOnLastBid) {
  NexmarkConfig config;
  config.bids_per_auction = 4;
  for (int64_t offset = 0; offset < 40; ++offset) {
    EXPECT_EQ(BidAt(config, offset).closes_auction, offset % 4 == 3)
        << offset;
  }
}

TEST(NexmarkGeneratorTest, PricesInRange) {
  NexmarkConfig config;
  for (int64_t offset = 0; offset < 10000; ++offset) {
    const Bid bid = BidAt(config, offset);
    EXPECT_GE(bid.price, 100);
    EXPECT_LT(bid.price, 10100);
  }
}

TEST(NexmarkReferenceTest, WindowIsBounded) {
  NexmarkConfig config;
  config.num_sellers = 3;
  config.bids_per_auction = 2;
  config.window_size = 10;
  auto ref = ComputeQ6Reference(config, 3 * 2 * 25);  // 25 auctions/seller
  ASSERT_EQ(ref.size(), 3u);
  for (const auto& [seller, state] : ref) {
    EXPECT_EQ(state.last_prices.size(), 10u);
    EXPECT_GT(state.average, 0.0);
  }
}

// End-to-end: the q6 pipeline's snapshot state must equal the oracle.
TEST(NexmarkPipelineTest, Q6StateMatchesReference) {
  NexmarkConfig config;
  config.num_sellers = 40;
  config.bids_per_auction = 5;
  config.total_events = 40 * 5 * 8;  // 8 auctions per seller (< window)

  kv::Grid grid(kv::GridConfig{.node_count = 3, .partition_count = 24,
                               .backup_count = 0});
  state::SnapshotRegistry registry(&grid, {.retained_versions = 2,
                                           .async_prune = false});
  query::QueryService service(&grid, &registry);

  Histogram latency;
  dataflow::JobGraph graph =
      BuildQ6Graph(config, /*source_parallelism=*/1,
                   /*operator_parallelism=*/2, &latency);
  state::SQueryConfig state_config;
  state_config.parallelism = 2;
  dataflow::JobConfig job_config;
  job_config.checkpoint_interval_ms = 25;
  job_config.partitioner = &grid.partitioner();
  job_config.listener = &registry;
  job_config.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);
  auto job = dataflow::Job::Create(graph, std::move(job_config));
  ASSERT_TRUE(job.ok()) << job.status();
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  // One last checkpoint cannot be taken (job finished); the live table holds
  // the final state.
  auto live = service.ScanLiveObjects(kAverageVertex);
  ASSERT_TRUE(live.ok()) << live.status();

  const auto reference = ComputeQ6Reference(config, config.total_events);
  ASSERT_EQ(live->size(), reference.size());
  for (const auto& [key, obj] : *live) {
    const auto it = reference.find(key.AsInt64());
    ASSERT_NE(it, reference.end()) << key.ToString();
    EXPECT_NEAR(obj.Get("average").AsDouble(), it->second.average, 1e-9)
        << "seller " << key.ToString();
    EXPECT_EQ(obj.Get("count").AsInt64(),
              static_cast<int64_t>(it->second.last_prices.size()));
  }
  // All auctions closed, so the winning-bids operator state drained to zero.
  auto winning = service.ScanLiveObjects(kWinningBidsVertex);
  ASSERT_TRUE(winning.ok());
  EXPECT_EQ(winning->size(), 0u);
  EXPECT_GT(latency.count(), 0);
}

// With checkpoints + a crash, the q6 state is still exact (exactly-once).
TEST(NexmarkPipelineTest, Q6SurvivesFailure) {
  NexmarkConfig config;
  config.num_sellers = 20;
  config.bids_per_auction = 5;
  config.total_events = 20 * 5 * 6;
  config.target_rate = 20000.0;

  kv::Grid grid(kv::GridConfig{.node_count = 2, .partition_count = 16,
                               .backup_count = 0});
  state::SnapshotRegistry registry(&grid, {.retained_versions = 2,
                                           .async_prune = false});
  query::QueryService service(&grid, &registry);

  dataflow::JobGraph graph = BuildQ6Graph(config, 1, 2, nullptr);
  state::SQueryConfig state_config;
  state_config.parallelism = 2;
  dataflow::JobConfig job_config;
  job_config.checkpoint_interval_ms = 20;
  job_config.partitioner = &grid.partitioner();
  job_config.listener = &registry;
  job_config.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);
  auto job = dataflow::Job::Create(graph, std::move(job_config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE((*job)->InjectFailureAndRecover().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  const auto reference = ComputeQ6Reference(config, config.total_events);
  auto live = service.ScanLiveObjects(kAverageVertex);
  ASSERT_TRUE(live.ok());
  ASSERT_EQ(live->size(), reference.size());
  for (const auto& [key, obj] : *live) {
    EXPECT_NEAR(obj.Get("average").AsDouble(),
                reference.at(key.AsInt64()).average, 1e-9);
  }
}

TEST(NexmarkQ1Test, ConvertsEveryBid) {
  NexmarkConfig config;
  config.total_events = 2000;
  dataflow::CollectingSink::Collector collector;
  dataflow::JobGraph graph = BuildQ1Graph(config, 2, nullptr);
  // Swap the sink for a collector (rebuild with collector sink).
  dataflow::JobGraph g2;
  const int32_t src = g2.AddSource(
      kSourceVertex, 1,
      dataflow::MakeGeneratorSourceFactory(
          dataflow::GeneratorSource::Options{.total_records = 2000},
          [config](int64_t offset, dataflow::OperatorContext* ctx) {
            return BidToRecord(BidAt(config, offset), ctx->NowNanos());
          }));
  const int32_t convert = g2.AddOperator(
      "q1convert", 2,
      dataflow::MakeLambdaOperatorFactory(
          [](const dataflow::Record& r, dataflow::OperatorContext* ctx) {
            kv::Object out = r.payload;
            out.Set("priceEur",
                    kv::Value(r.payload.Get("price").AsDouble() * 0.908));
            ctx->Emit(dataflow::Record::Data(r.key, std::move(out),
                                             r.source_nanos));
            return Status::OK();
          }),
      false);
  const int32_t sink =
      g2.AddSink("sink", 1, dataflow::MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(g2.Connect(src, convert, dataflow::EdgeKind::kKeyed).ok());
  ASSERT_TRUE(g2.Connect(convert, sink, dataflow::EdgeKind::kForward).ok());
  dataflow::JobConfig job_config;
  job_config.checkpoint_interval_ms = 0;
  auto job = dataflow::Job::Create(g2, std::move(job_config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  const auto records = collector.Snapshot();
  ASSERT_EQ(records.size(), 2000u);
  for (const auto& r : records) {
    EXPECT_NEAR(r.payload.Get("priceEur").AsDouble(),
                r.payload.Get("price").AsDouble() * 0.908, 1e-9);
  }
}

TEST(NexmarkQ5Test, WindowedBidCountsAreQueryable) {
  NexmarkConfig config;
  config.num_sellers = 10;
  config.bids_per_auction = 4;
  config.total_events = 4000;
  config.linger = true;

  kv::Grid grid(kv::GridConfig{.node_count = 2, .partition_count = 16,
                               .backup_count = 0});
  state::SnapshotRegistry registry(&grid, {.retained_versions = 2,
                                           .async_prune = false});
  query::QueryService service(&grid, &registry);

  // 500us windows over 1-bid-per-us event time: 8 windows of 500 bids.
  dataflow::JobGraph graph = BuildQ5Graph(config, 500, 2, nullptr);
  state::SQueryConfig state_config;
  state_config.parallelism = 2;
  dataflow::JobConfig job_config;
  job_config.checkpoint_interval_ms = 0;
  job_config.partitioner = &grid.partitioner();
  job_config.listener = &registry;
  job_config.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);
  auto job = dataflow::Job::Create(graph, std::move(job_config));
  ASSERT_TRUE(job.ok()) << job.status();
  ASSERT_TRUE((*job)->Start().ok());
  while ((*job)->ProcessedCount(kQ5WindowVertex) < config.total_events) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE((*job)->IsRunning());
  }
  ASSERT_TRUE((*job)->TriggerCheckpoint().ok());

  // Only the last window [3500,4000) is still open (watermark at 3999):
  // 500 bids over auctions 875..999 → 125 open auction-window states.
  auto open = service.Execute(
      "SELECT COUNT(*) AS n, SUM(count) AS bids FROM snapshot_q5window");
  ASSERT_TRUE(open.ok()) << open.status();
  EXPECT_EQ(open->At(0, "n").AsInt64(), 125);
  EXPECT_EQ(open->At(0, "bids").AsInt64(), 500);

  // "Hot items" of the open window via plain SQL: every auction has exactly
  // 4 bids in its window here, so the max count is 4.
  auto hot = service.Execute(
      "SELECT key, count FROM snapshot_q5window ORDER BY count DESC, key "
      "LIMIT 3");
  ASSERT_TRUE(hot.ok()) << hot.status();
  ASSERT_EQ(hot->RowCount(), 3u);
  EXPECT_EQ(hot->At(0, "count").AsInt64(), 4);
  ASSERT_TRUE((*job)->Stop().ok());
}

}  // namespace
}  // namespace sq::nexmark
