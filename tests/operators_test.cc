#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "dataflow/execution.h"
#include "dataflow/job_graph.h"
#include "dataflow/operators.h"

namespace sq::dataflow {
namespace {

using kv::Object;
using kv::Value;

OperatorFactory OffsetSource(GeneratorSource::Options options) {
  return MakeGeneratorSourceFactory(
      options, [](int64_t offset, OperatorContext* ctx) {
        Object payload;
        payload.Set("offset", Value(offset));
        return Record::Data(Value(offset), std::move(payload),
                            ctx->NowNanos());
      });
}

std::set<int64_t> RunAndCollectOffsets(GeneratorSource::Options options,
                                       int32_t source_parallelism) {
  JobGraph graph;
  CollectingSink::Collector collector;
  const int32_t src =
      graph.AddSource("src", source_parallelism, OffsetSource(options));
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  EXPECT_TRUE(graph.Connect(src, sink, EdgeKind::kForward).ok());
  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  EXPECT_TRUE(job.ok());
  EXPECT_TRUE((*job)->Start().ok());
  EXPECT_TRUE((*job)->AwaitCompletion().ok());
  std::set<int64_t> offsets;
  for (const Record& r : collector.Snapshot()) {
    offsets.insert(r.payload.Get("offset").AsInt64());
  }
  return offsets;
}

TEST(GeneratorSourceTest, BoundedSourceEmitsEveryOffsetOnce) {
  GeneratorSource::Options options;
  options.total_records = 1000;
  const auto offsets = RunAndCollectOffsets(options, 1);
  ASSERT_EQ(offsets.size(), 1000u);
  EXPECT_EQ(*offsets.begin(), 0);
  EXPECT_EQ(*offsets.rbegin(), 999);
}

TEST(GeneratorSourceTest, ParallelInstancesPartitionTheOffsetSpace) {
  GeneratorSource::Options options;
  options.total_records = 999;  // not divisible by parallelism
  const auto offsets = RunAndCollectOffsets(options, 4);
  ASSERT_EQ(offsets.size(), 999u);  // disjoint + complete
  EXPECT_EQ(*offsets.rbegin(), 998);
}

TEST(GeneratorSourceTest, RateLimitingIsApproximatelyHonored) {
  JobGraph graph;
  CollectingSink::Collector collector;
  GeneratorSource::Options options;
  options.total_records = -1;
  options.target_rate = 10000.0;
  const int32_t src = graph.AddSource("src", 1, OffsetSource(options));
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, sink, EdgeKind::kForward).ok());
  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_TRUE((*job)->Stop().ok());
  const size_t count = collector.Size();
  // 10k/s over ~0.4s: allow generous scheduling slack on a busy host.
  EXPECT_GT(count, 1500u);
  EXPECT_LT(count, 8000u);
}

TEST(GeneratorSourceTest, LingerKeepsJobAliveAfterExhaustion) {
  JobGraph graph;
  CollectingSink::Collector collector;
  GeneratorSource::Options options;
  options.total_records = 100;
  options.linger = true;
  const int32_t src = graph.AddSource("src", 1, OffsetSource(options));
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, sink, EdgeKind::kForward).ok());
  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(collector.Size(), 100u);
  EXPECT_TRUE((*job)->IsRunning());  // lingering, not finished
  // A checkpoint still works against the settled state.
  EXPECT_TRUE((*job)->TriggerCheckpoint().ok());
  ASSERT_TRUE((*job)->Stop().ok());
}

TEST(GeneratorSourceTest, OffsetsPersistAcrossRecovery) {
  // With checkpoints, a crash must not re-emit committed prefixes ... nor
  // lose records: exactly the offsets [0, N) reach the sink-side *state*.
  JobGraph graph;
  GeneratorSource::Options options;
  options.total_records = 20000;
  options.target_rate = 100000.0;
  const int32_t src = graph.AddSource("src", 2, OffsetSource(options));
  const int32_t op = graph.AddOperator(
      "seen", 1,
      MakeLambdaOperatorFactory([](const Record& r, OperatorContext* ctx) {
        Object state = ctx->GetState(r.key).value_or(Object());
        state.Set("hits", Value(state.Get("hits").AsInt64() + 1));
        ctx->PutState(r.key, state);
        return Status::OK();
      }));
  ASSERT_TRUE(graph.Connect(src, op, EdgeKind::kKeyed).ok());
  JobConfig config;
  config.checkpoint_interval_ms = 20;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  ASSERT_TRUE((*job)->InjectFailureAndRecover().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  // Every offset key hit exactly once (the state is keyed by offset).
  EXPECT_EQ((*job)->ProcessedCount("seen") >= 20000, true);
}

TEST(LatencySinkTest, RecordsSourceToSinkLatency) {
  Histogram latency;
  JobGraph graph;
  GeneratorSource::Options options;
  options.total_records = 500;
  const int32_t src = graph.AddSource("src", 1, OffsetSource(options));
  const int32_t sink =
      graph.AddSink("sink", 1, MakeLatencySinkFactory(&latency));
  ASSERT_TRUE(graph.Connect(src, sink, EdgeKind::kForward).ok());
  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  EXPECT_EQ(latency.count(), 500);
  EXPECT_GE(latency.min(), 0);
}

TEST(BroadcastEdgeTest, EveryInstanceSeesEveryRecord) {
  JobGraph graph;
  CollectingSink::Collector collector;
  GeneratorSource::Options options;
  options.total_records = 100;
  const int32_t src = graph.AddSource("src", 1, OffsetSource(options));
  const int32_t sink =
      graph.AddSink("sink", 3, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, sink, EdgeKind::kBroadcast).ok());
  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  EXPECT_EQ(collector.Size(), 300u);  // 100 records × 3 sink instances
}

}  // namespace
}  // namespace sq::dataflow
