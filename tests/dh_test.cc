#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/clock.h"
#include "dataflow/execution.h"
#include "dh/delivery.h"
#include "sql/parser.h"
#include "kv/grid.h"
#include "query/query_service.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"

namespace sq::dh {
namespace {

TEST(DeliveryGeneratorTest, OrderStateMachineAdvancesPerLap) {
  DeliveryConfig config;
  config.num_orders = 10;
  const auto first = OrderStatusAt(config, 3, 0, 0);
  EXPECT_EQ(first.payload.Get("orderState").ToString(), "ORDER_RECEIVED");
  const auto second = OrderStatusAt(config, 13, 0, 0);
  EXPECT_EQ(second.payload.Get("orderState").ToString(), "VENDOR_ACCEPTED");
  // Beyond the terminal state the order stays DELIVERED.
  const auto last = OrderStatusAt(config, 3 + 10 * 50, 0, 0);
  EXPECT_EQ(last.payload.Get("orderState").ToString(), "DELIVERED");
}

TEST(DeliveryGeneratorTest, InfoIsStablePerOrder) {
  DeliveryConfig config;
  config.num_orders = 100;
  const auto a = OrderInfoAt(config, 5, 0, 0);
  const auto b = OrderInfoAt(config, 105, 0, 0);  // same order, later lap
  EXPECT_EQ(a.payload.Get("deliveryZone"), b.payload.Get("deliveryZone"));
  EXPECT_EQ(a.payload.Get("vendorCategory"),
            b.payload.Get("vendorCategory"));
}

TEST(DeliveryGeneratorTest, LateFractionIsRespected) {
  DeliveryConfig config;
  config.num_orders = 20000;
  config.late_fraction = 0.3;
  int64_t late = 0;
  const int64_t now = 1000LL * 1000 * 1000;
  for (int64_t order = 0; order < config.num_orders; ++order) {
    const auto r = OrderStatusAt(config, order, 0, now);
    if (r.payload.Get("lateTimestamp").AsInt64() < now) ++late;
  }
  EXPECT_NEAR(static_cast<double>(late) / config.num_orders, 0.3, 0.02);
}

TEST(DeliveryGeneratorTest, RiderLocationsLookSane) {
  DeliveryConfig config;
  const auto r = RiderLocationAt(config, 123, 0, 777);
  EXPECT_GE(r.payload.Get("lat").AsDouble(), 52.0);
  EXPECT_LT(r.payload.Get("lat").AsDouble(), 54.1);
  EXPECT_EQ(r.payload.Get("updatedAt").AsInt64(), 777);
  EXPECT_EQ(r.key.AsInt64(), 123 % config.num_riders);
}

TEST(DeliveryQueriesTest, AllFourParse) {
  for (const std::string& q : {Query1(), Query2(), Query3(), Query4()}) {
    auto stmt = sql::ParseSelect(q);
    EXPECT_TRUE(stmt.ok()) << stmt.status() << "\n" << q;
  }
}

// End-to-end: run the monitoring job to completion, checkpoint, and compare
// Queries 1-4 against the oracle.
TEST(DeliveryPipelineTest, Queries1To4MatchReference) {
  DeliveryConfig config;
  config.num_orders = 600;
  config.num_riders = 50;
  // 3.5 laps: orders settle in different states across the machine.
  config.total_events = 2100;
  config.linger = true;  // keep the job alive so the final state can be
                         // checkpointed and queried

  kv::Grid grid(kv::GridConfig{.node_count = 3, .partition_count = 24,
                               .backup_count = 0});
  state::SnapshotRegistry registry(&grid, {.retained_versions = 2,
                                           .async_prune = false});
  query::QueryService service(&grid, &registry);

  dataflow::JobGraph graph =
      BuildDeliveryGraph(config, /*operator_parallelism=*/2, nullptr);
  state::SQueryConfig state_config;
  state_config.parallelism = 2;
  dataflow::JobConfig job_config;
  job_config.checkpoint_interval_ms = 0;  // manual checkpoint below
  job_config.partitioner = &grid.partitioner();
  job_config.listener = &registry;
  job_config.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);

  auto job = dataflow::Job::Create(graph, std::move(job_config));
  ASSERT_TRUE(job.ok()) << job.status();
  ASSERT_TRUE((*job)->Start().ok());
  // Wait until all events are ingested (sources linger afterwards), then
  // checkpoint the settled state. The stateful operators see every event
  // (the sink only sees deduplicated updates).
  while ((*job)->ProcessedCount(kOrderInfoVertex) < config.total_events ||
         (*job)->ProcessedCount(kOrderStateVertex) < config.total_events ||
         (*job)->ProcessedCount(kRiderLocationVertex) < config.total_events) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE((*job)->IsRunning());
  }
  auto ckpt = (*job)->TriggerCheckpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();

  const DeliveryReference ref =
      ComputeReference(config, config.total_events, UnixMicros());

  struct Case {
    std::string sql;
    const std::map<std::string, int64_t>* expected;
    std::string group_column;
  };
  const Case cases[] = {
      {Query1(), &ref.q1_late_per_zone, "deliveryZone"},
      {Query2(), &ref.q2_ready_per_category, "vendorCategory"},
      {Query3(), &ref.q3_preparing_per_zone, "deliveryZone"},
      {Query4(), &ref.q4_transit_per_zone, "deliveryZone"},
  };
  for (const Case& c : cases) {
    auto result = service.Execute(c.sql);
    ASSERT_TRUE(result.ok()) << result.status() << "\n" << c.sql;
    std::map<std::string, int64_t> actual;
    for (size_t i = 0; i < result->RowCount(); ++i) {
      actual[result->At(i, c.group_column).ToString()] =
          result->At(i, "COUNT(*)").AsInt64();
    }
    EXPECT_EQ(actual, *c.expected) << c.sql;
  }

  // Rider state is queryable too (used by the Fig. 14 experiment).
  auto riders = service.Execute(
      "SELECT COUNT(*) AS n FROM snapshot_riderlocation");
  ASSERT_TRUE(riders.ok()) << riders.status();
  EXPECT_EQ(riders->At(0, "n").AsInt64(), config.num_riders);

  ASSERT_TRUE((*job)->Stop().ok());
}

}  // namespace
}  // namespace sq::dh
