#include <gtest/gtest.h>

#include "sim/cluster_sim.h"

namespace sq::sim {
namespace {

TEST(ClusterSimTest, DopIsNodesTimesWorkers) {
  ClusterConfig config;
  config.nodes = 7;
  config.workers_per_node = 12;
  EXPECT_EQ(Dop(config), 84);
}

TEST(ClusterSimTest, LowLoadIsSustainableAndFast) {
  ClusterConfig config;
  SimOutcome outcome;
  SimulateRun(config, /*events_per_sec=*/100000.0, /*duration_s=*/5.0,
              &outcome);
  EXPECT_TRUE(outcome.sustainable);
  EXPECT_LT(outcome.utilization, 0.1);
  // Latency ≈ base + service at low load.
  EXPECT_LT(outcome.latency_ns.ValueAtPercentile(50), 5'000'000);
  EXPECT_GT(outcome.latency_ns.count(), 0);
}

TEST(ClusterSimTest, OverloadIsDetected) {
  ClusterConfig config;
  SimOutcome outcome;
  // Far beyond 1/service_time per worker.
  SimulateRun(config, 50'000'000.0, 3.0, &outcome);
  EXPECT_FALSE(outcome.sustainable);
}

TEST(ClusterSimTest, LatencyGrowsWithLoad) {
  ClusterConfig config;
  SimOutcome low;
  SimOutcome high;
  SimulateRun(config, 1'000'000.0, 5.0, &low);
  SimulateRun(config, 8'000'000.0, 5.0, &high);
  EXPECT_GE(high.latency_ns.ValueAtPercentile(99),
            low.latency_ns.ValueAtPercentile(99));
}

TEST(ClusterSimTest, SQueryOverheadShowsInTail) {
  ClusterConfig plain;
  ClusterConfig squery = plain;
  squery.squery_per_event_us = 0.4;
  squery.snapshot_pause_ms = plain.snapshot_pause_ms * 1.5;
  SimOutcome a;
  SimOutcome b;
  SimulateRun(plain, 5'000'000.0, 5.0, &a);
  SimulateRun(squery, 5'000'000.0, 5.0, &b);
  EXPECT_GE(b.latency_ns.ValueAtPercentile(99.9),
            a.latency_ns.ValueAtPercentile(99.9));
}

TEST(ClusterSimTest, ThroughputScalesLinearlyWithDop) {
  ClusterConfig config;
  config.workers_per_node = 12;
  config.nodes = 3;
  const double t3 = MaxSustainableThroughput(config, 5e6, 2.0);
  config.nodes = 7;
  const double t7 = MaxSustainableThroughput(config, 5e6, 2.0);
  EXPECT_GT(t3, 0.0);
  // 7 nodes ≈ 7/3 × the 3-node throughput (±15%).
  EXPECT_NEAR(t7 / t3, 7.0 / 3.0, 0.35);
}

TEST(ClusterSimTest, ShorterSnapshotIntervalCostsThroughput) {
  ClusterConfig config;
  // A large state makes the per-checkpoint pause significant, so the
  // cadence effect dominates binary-search noise.
  config.snapshot_pause_ms = 40.0;
  config.snapshot_interval_s = 2.0;
  const double slow_cadence = MaxSustainableThroughput(config, 5e6, 2.0);
  config.snapshot_interval_s = 0.5;
  const double fast_cadence = MaxSustainableThroughput(config, 5e6, 2.0);
  EXPECT_LT(fast_cadence, slow_cadence);
  // The effect is small (a few percent), as in Fig. 15.
  EXPECT_GT(fast_cadence, 0.9 * slow_cadence);
}

TEST(ClusterSimTest, DeterministicForSeed) {
  ClusterConfig config;
  SimOutcome a;
  SimOutcome b;
  SimulateRun(config, 2'000'000.0, 2.0, &a);
  SimulateRun(config, 2'000'000.0, 2.0, &b);
  EXPECT_EQ(a.latency_ns.count(), b.latency_ns.count());
  EXPECT_EQ(a.latency_ns.ValueAtPercentile(99),
            b.latency_ns.ValueAtPercentile(99));
}

}  // namespace
}  // namespace sq::sim
