#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dataflow/checkpoint.h"
#include "kv/grid.h"
#include "kv/object.h"
#include "kv/value.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"
#include "storage/crc32c.h"
#include "storage/durable_listener.h"
#include "storage/serde.h"
#include "storage/snapshot_log.h"

namespace sq::storage {
namespace {

namespace fs = std::filesystem;

kv::Object MakeObject(int64_t n) {
  kv::Object o;
  o.Set("n", kv::Value(n));
  o.Set("label", kv::Value("v" + std::to_string(n)));
  return o;
}

class TempDir {
 public:
  TempDir() {
    std::string tmpl = "/tmp/sq_storage_test_XXXXXX";
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  // 32 zero bytes -> 0x8A9136AA (RFC 3720 test vector).
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "hello, snapshot log";
  uint32_t crc = 0;
  for (char c : data) crc = Crc32cExtend(crc, &c, 1);
  EXPECT_EQ(crc, Crc32c(data));
}

TEST(Crc32cTest, MaskRoundtripAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu, Crc32c("x")}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

// ---------------------------------------------------------------------------
// Serde

TEST(SerdeTest, ValueRoundtripAllTypes) {
  const std::vector<kv::Value> values = {
      kv::Value(),         kv::Value(true),        kv::Value(false),
      kv::Value(int64_t{-42}), kv::Value(3.25),    kv::Value(""),
      kv::Value("hello"),  kv::Value(int64_t{1} << 60)};
  std::string buf;
  for (const kv::Value& v : values) PutValue(&buf, v);
  Reader reader(buf);
  for (const kv::Value& v : values) {
    kv::Value out;
    ASSERT_TRUE(reader.ReadValue(&out));
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(reader.exhausted());
}

TEST(SerdeTest, ObjectRoundtrip) {
  kv::Object o;
  o.Set("id", kv::Value(int64_t{7}));
  o.Set("name", kv::Value("order"));
  o.Set("price", kv::Value(12.5));
  std::string buf;
  PutObject(&buf, o);
  Reader reader(buf);
  kv::Object out;
  ASSERT_TRUE(reader.ReadObject(&out));
  EXPECT_EQ(out, o);
}

TEST(SerdeTest, TruncationPoisonsReader) {
  std::string buf;
  PutString(&buf, "some payload");
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Reader reader(std::string_view(buf).substr(0, cut));
    std::string out;
    EXPECT_FALSE(reader.ReadString(&out)) << "cut=" << cut;
    EXPECT_FALSE(reader.ok());
  }
}

TEST(SerdeTest, HugeObjectCountRejectedBeforeAllocation) {
  std::string buf;
  PutU32(&buf, 0xFFFFFFFFu);  // claims 4B fields, no data follows
  Reader reader(buf);
  kv::Object out;
  EXPECT_FALSE(reader.ReadObject(&out));
  EXPECT_FALSE(reader.ok());
}

TEST(SerdeTest, UnknownValueTagIsCorrupt) {
  std::string buf;
  PutU8(&buf, 99);
  Reader reader(buf);
  kv::Value out;
  EXPECT_FALSE(reader.ReadValue(&out));
  EXPECT_FALSE(reader.ok());
}

// ---------------------------------------------------------------------------
// SnapshotLog: append / commit / reopen

std::vector<SnapshotLog::DeltaEntry> Delta(
    std::initializer_list<std::pair<int64_t, int64_t>> kvs) {
  std::vector<SnapshotLog::DeltaEntry> entries;
  for (const auto& [k, v] : kvs) {
    entries.push_back(
        SnapshotLog::DeltaEntry{kv::Value(k), false, MakeObject(v)});
  }
  return entries;
}

SnapshotLog::DeltaEntry Tombstone(int64_t key) {
  return SnapshotLog::DeltaEntry{kv::Value(key), true, kv::Object()};
}

std::map<int64_t, int64_t> ReadView(const SnapshotLog& log,
                                    const std::string& table, int64_t ssid) {
  std::map<int64_t, int64_t> view;
  EXPECT_TRUE(log.ScanSnapshot(table, ssid,
                               [&view](int32_t, const kv::Value& key,
                                       int64_t, const kv::Object& value) {
                                 view[key.int64_value()] =
                                     value.Get("n").int64_value();
                               })
                  .ok());
  return view;
}

TEST(SnapshotLogTest, CommitMakesSnapshotDurableAcrossReopen) {
  TempDir dir;
  {
    auto log = SnapshotLog::Open({.dir = dir.path()});
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 10}, {2, 20}}))
            .ok());
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_orders", 1, 1, Delta({{3, 30}})).ok());
    ASSERT_TRUE((*log)->Commit(1).ok());
    EXPECT_TRUE((*log)->IsDurable(1));
    EXPECT_EQ((*log)->LatestDurable(), 1);
    EXPECT_GT((*log)->PersistedBytes(1), 0);
  }
  auto reopened = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->IsDurable(1));
  EXPECT_EQ((*reopened)->CommittedIds(), std::vector<int64_t>({1}));
  EXPECT_EQ((*reopened)->recovery_info().torn_bytes_skipped, 0);
  EXPECT_EQ(ReadView(**reopened, "snapshot_orders", 1),
            (std::map<int64_t, int64_t>{{1, 10}, {2, 20}, {3, 30}}));
  EXPECT_EQ((*reopened)->TableNames(),
            std::vector<std::string>({"snapshot_orders"}));
}

// Regression test for a determinism bug sq-lint's pass flagged: the
// durable-fallback scan built its merged view in an unordered_map and
// emitted rows in hash order, which reached query output. Emission must be
// in key order, byte-identical across processes and library versions.
TEST(SnapshotLogTest, DurableScanEmitsRowsInKeyOrder) {
  TempDir dir;
  auto log = SnapshotLog::Open({.dir = dir.path(), .segment_bytes = 64});
  ASSERT_TRUE(log.ok()) << log.status();
  // Append keys in a scrambled order, across several snapshots and segment
  // rotations, so hash order and insertion order both differ from key order.
  ASSERT_TRUE((*log)
                  ->AppendDelta("snapshot_orders", 1, 0,
                                Delta({{7, 70}, {2, 20}, {11, 110}}))
                  .ok());
  ASSERT_TRUE((*log)->Commit(1).ok());
  ASSERT_TRUE((*log)
                  ->AppendDelta("snapshot_orders", 2, 0,
                                Delta({{5, 50}, {1, 10}, {9, 90}}))
                  .ok());
  ASSERT_TRUE((*log)->Commit(2).ok());

  std::vector<int64_t> emitted;
  ASSERT_TRUE((*log)
                  ->ScanSnapshot("snapshot_orders", 2,
                                 [&emitted](int32_t, const kv::Value& key,
                                            int64_t, const kv::Object&) {
                                   emitted.push_back(key.int64_value());
                                 })
                  .ok());
  EXPECT_EQ(emitted, (std::vector<int64_t>{1, 2, 5, 7, 9, 11}));
}

// Compacting the same inputs must produce byte-identical rewritten
// segments on any node (the on-disk mirror of the bit-identical merge
// invariant), so the rewrite order cannot come from a hash map either.
TEST(SnapshotLogTest, CompactionOutputIsByteIdenticalAcrossLogs) {
  auto build = [](const std::string& dir_path) {
    auto log = SnapshotLog::Open({.dir = dir_path,
                                  .segment_bytes = 1,
                                  .retained_snapshots = 1,
                                  .async_compact = false});
    ASSERT_TRUE(log.ok()) << log.status();
    for (int64_t id = 1; id <= 4; ++id) {
      ASSERT_TRUE((*log)
                      ->AppendDelta("snapshot_orders", id, 0,
                                    Delta({{17 - id, id * 10}, {id, id}}))
                      .ok());
      ASSERT_TRUE((*log)->Commit(id).ok());
    }
    ASSERT_GT((*log)->Stats().compactions, 0);
  };
  TempDir a;
  TempDir b;
  build(a.path());
  build(b.path());

  // Commit records embed a wall-clock timestamp, so raw segment bytes can
  // never match across runs; strip those blocks and compare everything else
  // (all the data records, which is where hash-order nondeterminism lived).
  auto read_sorted_segments = [](const std::string& dir_path) {
    constexpr size_t kFileHeader = 16;   // magic + version + reserved
    constexpr size_t kBlockHeader = 8;   // u32 length + u32 masked crc
    constexpr char kCommitRecord = 2;
    std::vector<std::string> contents;
    for (const auto& entry : fs::directory_iterator(dir_path)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("segment-", 0) != 0) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      const std::string raw((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
      if (raw.size() < kFileHeader) {
        ADD_FAILURE() << name << " is shorter than a segment header";
        continue;
      }
      std::string kept = raw.substr(0, kFileHeader);
      size_t off = kFileHeader;
      while (off + kBlockHeader <= raw.size()) {
        uint32_t len = 0;
        std::memcpy(&len, raw.data() + off, sizeof(len));
        if (off + kBlockHeader + len > raw.size()) {
          ADD_FAILURE() << name << " has a truncated record block";
          break;
        }
        if (raw[off + kBlockHeader] != kCommitRecord) {
          kept.append(raw, off, kBlockHeader + len);
        }
        off += kBlockHeader + len;
      }
      contents.push_back(std::move(kept));
    }
    std::sort(contents.begin(), contents.end());
    return contents;
  };
  EXPECT_EQ(read_sorted_segments(a.path()), read_sorted_segments(b.path()));
}

TEST(SnapshotLogTest, UncommittedAppendsAreDiscardedOnReopen) {
  TempDir dir;
  {
    auto log = SnapshotLog::Open({.dir = dir.path(), .flush_bytes = 1});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 10}})).ok());
    ASSERT_TRUE((*log)->Commit(1).ok());
    // Phase-1 spill of snapshot 2 (flush_bytes=1 forces it to the file) with
    // no commit: must vanish on reopen.
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_orders", 2, 0, Delta({{9, 99}})).ok());
  }
  auto reopened = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->IsDurable(1));
  EXPECT_FALSE((*reopened)->IsDurable(2));
  EXPECT_GT((*reopened)->recovery_info().torn_bytes_skipped, 0);
  EXPECT_EQ(ReadView(**reopened, "snapshot_orders", 1),
            (std::map<int64_t, int64_t>{{1, 10}}));
}

TEST(SnapshotLogTest, AbortDiscardsSpilledTailAndAllowsIdReuse) {
  TempDir dir;
  auto log = SnapshotLog::Open({.dir = dir.path(), .flush_bytes = 1});
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(
      (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 10}})).ok());
  ASSERT_TRUE((*log)->Abort(1).ok());
  // The failure-recovery protocol reuses the aborted id for the retry.
  ASSERT_TRUE(
      (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 11}})).ok());
  ASSERT_TRUE((*log)->Commit(1).ok());
  EXPECT_EQ(ReadView(**log, "snapshot_orders", 1),
            (std::map<int64_t, int64_t>{{1, 11}}));
  EXPECT_EQ((*log)->Stats().aborts, 1);
}

TEST(SnapshotLogTest, MismatchedPendingSsidIsRejected) {
  TempDir dir;
  auto log = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(
      (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 10}})).ok());
  EXPECT_FALSE(
      (*log)->AppendDelta("snapshot_orders", 2, 0, Delta({{2, 20}})).ok());
  EXPECT_FALSE((*log)->Commit(2).ok());
  ASSERT_TRUE((*log)->Commit(1).ok());
}

TEST(SnapshotLogTest, TornTailIsTruncatedByChecksum) {
  TempDir dir;
  std::string segment_path;
  {
    auto log = SnapshotLog::Open({.dir = dir.path()});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 10}})).ok());
    ASSERT_TRUE((*log)->Commit(1).ok());
  }
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().filename().string().rfind("segment-", 0) == 0) {
      segment_path = entry.path().string();
    }
  }
  ASSERT_FALSE(segment_path.empty());
  const auto durable_size = fs::file_size(segment_path);
  {
    // A torn record: plausible header, garbage payload.
    std::ofstream out(segment_path, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00\xAA\xBB\xCC\xDDgarbage-torn-write", 26);
  }
  auto reopened = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->IsDurable(1));
  EXPECT_EQ((*reopened)->recovery_info().torn_bytes_skipped, 26);
  EXPECT_EQ(fs::file_size(segment_path), durable_size);
  EXPECT_EQ(ReadView(**reopened, "snapshot_orders", 1),
            (std::map<int64_t, int64_t>{{1, 10}}));
}

TEST(SnapshotLogTest, MixedFormatSegmentsReadBackAcrossReopen) {
  TempDir dir;
  {
    // Old-format writer: row-at-a-time delta records.
    auto log = SnapshotLog::Open({.dir = dir.path(),
                                  .segment_bytes = 1,  // rotate per commit
                                  .columnar_segments = false});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 10}, {2, 20}}))
            .ok());
    ASSERT_TRUE((*log)->Commit(1).ok());
  }
  std::string newest_segment;
  {
    // Upgraded writer: columnar records appended to the same log — the
    // directory now mixes both record formats across segments.
    auto log = SnapshotLog::Open({.dir = dir.path(),
                                  .segment_bytes = 1,
                                  .columnar_segments = true});
    ASSERT_TRUE(log.ok());
    std::vector<SnapshotLog::DeltaEntry> delta2 = Delta({{2, 21}, {3, 30}});
    delta2.push_back(Tombstone(1));
    ASSERT_TRUE((*log)->AppendDelta("snapshot_orders", 2, 0, delta2).ok());
    ASSERT_TRUE((*log)->Commit(2).ok());
  }
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("segment-", 0) == 0 &&
        (newest_segment.empty() || entry.path().string() > newest_segment)) {
      newest_segment = entry.path().string();
    }
  }
  ASSERT_FALSE(newest_segment.empty());
  const auto durable_size = fs::file_size(newest_segment);
  {
    // Torn tail on top of the mixed history: plausible header, garbage body.
    std::ofstream out(newest_segment, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00\xAA\xBB\xCC\xDDgarbage-torn-write", 26);
  }

  auto reopened = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->IsDurable(1));
  EXPECT_TRUE((*reopened)->IsDurable(2));
  EXPECT_EQ((*reopened)->recovery_info().torn_bytes_skipped, 26);
  EXPECT_EQ(fs::file_size(newest_segment), durable_size);
  EXPECT_EQ(ReadView(**reopened, "snapshot_orders", 1),
            (std::map<int64_t, int64_t>{{1, 10}, {2, 20}}));
  EXPECT_EQ(ReadView(**reopened, "snapshot_orders", 2),
            (std::map<int64_t, int64_t>{{2, 21}, {3, 30}}));

  // Replay rebuilds the grid from the mixed-format history: values written
  // as row records and as columnar records land in the same table.
  kv::Grid grid(kv::GridConfig{});
  auto info = (*reopened)->ReplayInto(&grid, /*retained_versions=*/2);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->latest_committed, 2);
  kv::SnapshotTable* orders = grid.GetSnapshotTable("snapshot_orders");
  ASSERT_NE(orders, nullptr);
  EXPECT_FALSE(orders->GetAt(kv::Value(int64_t{1}), 2).has_value());
  EXPECT_EQ(orders->GetAt(kv::Value(int64_t{1}), 1)->Get("n").int64_value(),
            10);
  EXPECT_EQ(orders->GetAt(kv::Value(int64_t{2}), 2)->Get("n").int64_value(),
            21);
  EXPECT_EQ(orders->GetAt(kv::Value(int64_t{3}), 2)->Get("n").int64_value(),
            30);
}

TEST(SnapshotLogTest, CompactionMigratesRowSegmentsToColumnar) {
  TempDir dir;
  {
    auto log = SnapshotLog::Open({.dir = dir.path(),
                                  .segment_bytes = 1,
                                  .columnar_segments = false});
    ASSERT_TRUE(log.ok());
    for (int64_t id = 1; id <= 4; ++id) {
      ASSERT_TRUE((*log)
                      ->AppendDelta("snapshot_orders", id, 0,
                                    Delta({{1, id * 10}, {id + 10, id}}))
                      .ok());
      ASSERT_TRUE((*log)->Commit(id).ok());
    }
  }
  // Reopen with columnar writes and a retention floor: compaction rewrites
  // the surviving bases of the old row segments in the columnar format.
  auto log = SnapshotLog::Open({.dir = dir.path(),
                                .segment_bytes = 1,
                                .retained_snapshots = 1,
                                .async_compact = false,
                                .columnar_segments = true});
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(
      (*log)->AppendDelta("snapshot_orders", 5, 0, Delta({{1, 50}})).ok());
  ASSERT_TRUE((*log)->Commit(5).ok());
  EXPECT_GT((*log)->Stats().compactions, 0);
  const auto view = ReadView(**log, "snapshot_orders", 5);
  EXPECT_EQ(view.at(1), 50);
  // Bases carried over from the migrated row segments keep their values.
  EXPECT_EQ(view.at(11), 1);
  EXPECT_EQ(view.at(14), 4);
}

TEST(SnapshotLogTest, MissingManifestFallsBackToDirectoryScan) {
  TempDir dir;
  {
    auto log = SnapshotLog::Open(
        {.dir = dir.path(), .segment_bytes = 256});  // force rotations
    ASSERT_TRUE(log.ok());
    for (int64_t id = 1; id <= 4; ++id) {
      ASSERT_TRUE((*log)
                      ->AppendDelta("snapshot_orders", id, 0,
                                    Delta({{id, id * 10}}))
                      .ok());
      ASSERT_TRUE((*log)->Commit(id).ok());
    }
    EXPECT_GT((*log)->Stats().segments, 1);
  }
  fs::remove(dir.path() + "/MANIFEST");
  auto reopened = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->CommittedIds(),
            std::vector<int64_t>({1, 2, 3, 4}));
  EXPECT_EQ(ReadView(**reopened, "snapshot_orders", 4),
            (std::map<int64_t, int64_t>{{1, 10}, {2, 20}, {3, 30}, {4, 40}}));
}

TEST(SnapshotLogTest, CorruptManifestFallsBackToDirectoryScan) {
  TempDir dir;
  {
    auto log = SnapshotLog::Open({.dir = dir.path()});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 10}})).ok());
    ASSERT_TRUE((*log)->Commit(1).ok());
  }
  {
    std::ofstream out(dir.path() + "/MANIFEST", std::ios::binary);
    out << "not a manifest at all\n";
  }
  auto reopened = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->IsDurable(1));
}

TEST(SnapshotLogTest, BackwardDifferentialReadAcrossSnapshots) {
  TempDir dir;
  auto log = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(log.ok());
  // ssid 1: keys 1,2.  ssid 2: key 2 updated, key 3 added, key 1 deleted.
  ASSERT_TRUE(
      (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 10}, {2, 20}}))
          .ok());
  ASSERT_TRUE((*log)->Commit(1).ok());
  std::vector<SnapshotLog::DeltaEntry> delta2 = Delta({{2, 21}, {3, 30}});
  delta2.push_back(Tombstone(1));
  ASSERT_TRUE((*log)->AppendDelta("snapshot_orders", 2, 0, delta2).ok());
  ASSERT_TRUE((*log)->Commit(2).ok());

  EXPECT_EQ(ReadView(**log, "snapshot_orders", 1),
            (std::map<int64_t, int64_t>{{1, 10}, {2, 20}}));
  // ssid 2 merges: key 1 tombstoned away, key 2 overridden, key 3 new.
  EXPECT_EQ(ReadView(**log, "snapshot_orders", 2),
            (std::map<int64_t, int64_t>{{2, 21}, {3, 30}}));
  // Not-committed id is not readable.
  EXPECT_FALSE((*log)
                   ->ScanSnapshot("snapshot_orders", 3,
                                  [](int32_t, const kv::Value&, int64_t,
                                     const kv::Object&) {})
                   .ok());
}

// ---------------------------------------------------------------------------
// Compaction

TEST(SnapshotLogTest, CompactionPreservesBaseEntriesForDifferentialReads) {
  TempDir dir;
  auto log = SnapshotLog::Open({.dir = dir.path(),
                                .segment_bytes = 1,  // rotate every commit
                                .retained_snapshots = 2,
                                .async_compact = false});
  ASSERT_TRUE(log.ok());
  // Key 1 written only at ssid 1; key 2 rewritten each snapshot; key 3
  // deleted at ssid 2.
  ASSERT_TRUE((*log)
                  ->AppendDelta("snapshot_orders", 1, 0,
                                Delta({{1, 10}, {2, 20}, {3, 30}}))
                  .ok());
  ASSERT_TRUE((*log)->Commit(1).ok());
  std::vector<SnapshotLog::DeltaEntry> delta2 = Delta({{2, 21}});
  delta2.push_back(Tombstone(3));
  ASSERT_TRUE((*log)->AppendDelta("snapshot_orders", 2, 0, delta2).ok());
  ASSERT_TRUE((*log)->Commit(2).ok());
  ASSERT_TRUE(
      (*log)->AppendDelta("snapshot_orders", 3, 0, Delta({{2, 22}})).ok());
  ASSERT_TRUE((*log)->Commit(3).ok());
  ASSERT_TRUE(
      (*log)->AppendDelta("snapshot_orders", 4, 0, Delta({{2, 23}})).ok());
  ASSERT_TRUE((*log)->Commit(4).ok());

  // retained_snapshots=2 -> floor is ssid 3; ids 1-2 fell off the window.
  EXPECT_FALSE((*log)->IsDurable(1));
  EXPECT_FALSE((*log)->IsDurable(2));
  EXPECT_TRUE((*log)->IsDurable(3));
  EXPECT_TRUE((*log)->IsDurable(4));
  EXPECT_GT((*log)->Stats().compactions, 0);

  // Key 1's base entry (ssid 1) must survive compaction: ssid 3's view
  // still needs it. Key 3's tombstone chain is gone entirely.
  EXPECT_EQ(ReadView(**log, "snapshot_orders", 3),
            (std::map<int64_t, int64_t>{{1, 10}, {2, 22}}));
  EXPECT_EQ(ReadView(**log, "snapshot_orders", 4),
            (std::map<int64_t, int64_t>{{1, 10}, {2, 23}}));
}

TEST(SnapshotLogTest, CompactionSurvivesReopen) {
  TempDir dir;
  {
    auto log = SnapshotLog::Open({.dir = dir.path(),
                                  .segment_bytes = 1,
                                  .retained_snapshots = 1,
                                  .async_compact = false});
    ASSERT_TRUE(log.ok());
    for (int64_t id = 1; id <= 5; ++id) {
      ASSERT_TRUE((*log)
                      ->AppendDelta("snapshot_orders", id, 0,
                                    Delta({{1, id * 10}, {id + 10, id}}))
                      .ok());
      ASSERT_TRUE((*log)->Commit(id).ok());
    }
  }
  auto reopened = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->IsDurable(5));
  const auto view = ReadView(**reopened, "snapshot_orders", 5);
  EXPECT_EQ(view.at(1), 50);
  // Base entries of earlier snapshots survive with their original ssids.
  EXPECT_EQ(view.at(11), 1);
  EXPECT_EQ(view.at(15), 5);
}

TEST(SnapshotLogTest, AsyncCompactorDrainsAndShutsDownCleanly) {
  TempDir dir;
  auto log = SnapshotLog::Open({.dir = dir.path(),
                                .segment_bytes = 1,
                                .retained_snapshots = 1,
                                .async_compact = true});
  ASSERT_TRUE(log.ok());
  for (int64_t id = 1; id <= 6; ++id) {
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_orders", id, 0, Delta({{1, id}})).ok());
    ASSERT_TRUE((*log)->Commit(id).ok());
  }
  (*log)->FlushCompaction();
  EXPECT_GT((*log)->Stats().compactions, 0);
  EXPECT_EQ(ReadView(**log, "snapshot_orders", 6),
            (std::map<int64_t, int64_t>{{1, 6}}));
  // Destruction with a possibly queued compaction must not hang or race
  // (run under ASan/TSan in CI).
}

// ---------------------------------------------------------------------------
// Replay into the grid + registry restore

TEST(SnapshotLogTest, ReplayIntoRebuildsGridAndRegistry) {
  TempDir dir;
  {
    auto log = SnapshotLog::Open({.dir = dir.path()});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_orders", 1, 0, Delta({{1, 10}, {2, 20}}))
            .ok());
    ASSERT_TRUE((*log)->Commit(1).ok());
    std::vector<SnapshotLog::DeltaEntry> delta2 = Delta({{2, 21}});
    delta2.push_back(Tombstone(1));
    ASSERT_TRUE((*log)->AppendDelta("snapshot_orders", 2, 0, delta2).ok());
    ASSERT_TRUE((*log)->Commit(2).ok());
    ASSERT_TRUE(
        (*log)->AppendDelta("snapshot_riders", 3, 0, Delta({{7, 70}})).ok());
    ASSERT_TRUE((*log)->Commit(3).ok());
  }

  auto log = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(log.ok());
  kv::Grid grid(kv::GridConfig{});
  auto info = (*log)->ReplayInto(&grid, /*retained_versions=*/2);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->latest_committed, 3);
  EXPECT_EQ(info->committed_count, 3);

  kv::SnapshotTable* orders = grid.GetSnapshotTable("snapshot_orders");
  ASSERT_NE(orders, nullptr);
  EXPECT_FALSE(orders->GetAt(kv::Value(int64_t{1}), 2).has_value());
  EXPECT_EQ(orders->GetAt(kv::Value(int64_t{2}), 2)->Get("n").int64_value(),
            21);
  kv::SnapshotTable* riders = grid.GetSnapshotTable("snapshot_riders");
  ASSERT_NE(riders, nullptr);
  EXPECT_EQ(riders->GetAt(kv::Value(int64_t{7}), 3)->Get("n").int64_value(),
            70);

  state::SnapshotRegistry registry(
      &grid, state::SnapshotRegistry::Options{.retained_versions = 2,
                                              .async_prune = false});
  registry.RestoreCommitted((*log)->CommittedIds());
  EXPECT_EQ(registry.latest_committed(), 3);
  EXPECT_TRUE(registry.IsQueryable(2));
  EXPECT_TRUE(registry.IsQueryable(3));
  EXPECT_FALSE(registry.IsQueryable(1));  // outside the retention window
}

// ---------------------------------------------------------------------------
// DurableSnapshotListener through the checkpoint chain

TEST(DurableListenerTest, ChainPersistsGridSnapshotsThroughCheckpoints) {
  TempDir dir;
  kv::Grid grid(kv::GridConfig{});
  auto log = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(log.ok());
  state::SnapshotRegistry registry(
      &grid, state::SnapshotRegistry::Options{.retained_versions = 2,
                                              .async_prune = false});
  DurableSnapshotListener durable(&grid, log->get());
  dataflow::CheckpointListenerChain chain({&durable, &registry});

  kv::SnapshotTable* table = grid.GetOrCreateSnapshotTable("snapshot_orders");
  // Simulate checkpoint 1's phase-1 writes, then drive the chain.
  table->Write(1, kv::Value(int64_t{1}), MakeObject(10));
  table->Write(1, kv::Value(int64_t{2}), MakeObject(20));
  chain.OnCheckpointPrepared(1);
  chain.OnCheckpointCommitted(1);
  EXPECT_EQ(registry.latest_committed(), 1);
  EXPECT_TRUE((*log)->IsDurable(1));
  EXPECT_EQ(durable.write_failures(), 0);

  // Checkpoint 2 aborts: neither the registry nor the log may keep it.
  table->Write(2, kv::Value(int64_t{1}), MakeObject(11));
  chain.OnCheckpointPrepared(2);
  chain.OnCheckpointAborted(2);
  EXPECT_FALSE((*log)->IsDurable(2));
  EXPECT_FALSE(table->GetExact(kv::Value(int64_t{1}), 2).has_value());

  // Retry commits under the same id (the engine reuses aborted ids).
  table->Write(2, kv::Value(int64_t{1}), MakeObject(12));
  chain.OnCheckpointPrepared(2);
  chain.OnCheckpointCommitted(2);
  EXPECT_TRUE((*log)->IsDurable(2));
  EXPECT_EQ(ReadView(**log, "snapshot_orders", 2),
            (std::map<int64_t, int64_t>{{1, 12}, {2, 20}}));
}

// ---------------------------------------------------------------------------
// SQueryStateStore disk fallback

TEST(DurableListenerTest, RestoreFromTableFallsBackToDisk) {
  TempDir dir;
  auto log = SnapshotLog::Open({.dir = dir.path()});
  ASSERT_TRUE(log.ok());
  {
    // A previous incarnation persisted checkpoint 1 of "orders".
    kv::Grid old_grid(kv::GridConfig{});
    kv::SnapshotTable* table =
        old_grid.GetOrCreateSnapshotTable("snapshot_orders");
    DurableSnapshotListener durable(&old_grid, log->get());
    for (int64_t k = 0; k < 50; ++k) {
      table->Write(1, kv::Value(k), MakeObject(k * 100));
    }
    durable.OnCheckpointPrepared(1);
    durable.OnCheckpointCommitted(1);
  }

  // Fresh (post-crash) grid: the in-memory snapshot table is empty, so
  // RestoreFromTable must fall through to the log.
  kv::Grid grid(kv::GridConfig{});
  state::SQueryConfig config;
  config.parallelism = 2;
  config.durable_log = log->get();
  state::SQueryStateStats stats;
  state::SQueryStateStore store0(&grid, "orders", 0, config, &stats);
  state::SQueryStateStore store1(&grid, "orders", 1, config, &stats);
  ASSERT_TRUE(store0.RestoreFromTable(1).ok());
  ASSERT_TRUE(store1.RestoreFromTable(1).ok());
  EXPECT_EQ(store0.Size() + store1.Size(), 50u);
  // Ownership is disjoint: both instances together hold each key once.
  int found = 0;
  for (int64_t k = 0; k < 50; ++k) {
    const bool in0 = store0.Get(kv::Value(k)).has_value();
    const bool in1 = store1.Get(kv::Value(k)).has_value();
    EXPECT_NE(in0, in1) << "key " << k;
    if (in0 || in1) ++found;
  }
  EXPECT_EQ(found, 50);
}

}  // namespace
}  // namespace sq::storage
