// QueryService unit tests against a hand-populated grid (no engine):
// version pinning via options, retention errors, __versions semantics,
// isolation gating, and resolver behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kv/grid.h"
#include "query/query_service.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"

namespace sq::query {
namespace {

using kv::Object;
using kv::Value;

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest()
      : grid_(kv::GridConfig{.node_count = 2, .partition_count = 8,
                             .backup_count = 0}),
        registry_(&grid_, {.retained_versions = 2, .async_prune = false}),
        service_(&grid_, &registry_),
        store_(&grid_, "counts", 0,
               state::SQueryConfig{.parallelism = 1}) {
    // Three committed snapshots of a two-key state.
    for (int64_t ckpt = 1; ckpt <= 3; ++ckpt) {
      for (int64_t key = 0; key < 2; ++key) {
        Object o;
        o.Set("v", Value(ckpt * 10 + key));
        store_.Put(Value(key), std::move(o));
      }
      EXPECT_TRUE(store_.SnapshotTo(ckpt).ok());
      registry_.OnCheckpointCommitted(ckpt);
    }
  }

  kv::Grid grid_;
  state::SnapshotRegistry registry_;
  QueryService service_;
  state::SQueryStateStore store_;
};

TEST_F(QueryServiceTest, DefaultsToLatestCommitted) {
  auto result = service_.Execute(
      "SELECT SUM(v) AS s FROM snapshot_counts");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, "s").AsInt64(), 30 + 31);
}

TEST_F(QueryServiceTest, OptionsPinSnapshotId) {
  QueryOptions options;
  options.snapshot_id = 2;
  auto result =
      service_.Execute("SELECT SUM(v) AS s FROM snapshot_counts", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, "s").AsInt64(), 20 + 21);
}

TEST_F(QueryServiceTest, WhereSsidOverridesOptions) {
  QueryOptions options;
  options.snapshot_id = 2;
  auto result = service_.Execute(
      "SELECT SUM(v) AS s FROM snapshot_counts WHERE ssid=3", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, "s").AsInt64(), 30 + 31);
}

TEST_F(QueryServiceTest, OutOfRetentionVersionIsRejected) {
  // retained_versions=2: only {2, 3} remain queryable.
  auto result =
      service_.Execute("SELECT v FROM snapshot_counts WHERE ssid=1");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  QueryOptions options;
  options.snapshot_id = 99;
  auto future =
      service_.Execute("SELECT v FROM snapshot_counts", options);
  EXPECT_FALSE(future.ok());
}

TEST_F(QueryServiceTest, VersionsTableListsRetainedOnly) {
  auto result = service_.Execute(
      "SELECT ssid, COUNT(*) AS n FROM snapshot_counts__versions "
      "GROUP BY ssid ORDER BY ssid");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->RowCount(), 2u);  // versions 2 and 3
  EXPECT_EQ(result->At(0, "ssid").AsInt64(), 2);
  EXPECT_EQ(result->At(0, "n").AsInt64(), 2);
  EXPECT_EQ(result->At(1, "ssid").AsInt64(), 3);
}

TEST_F(QueryServiceTest, UnknownTablesAreNotFound) {
  EXPECT_TRUE(service_.Execute("SELECT * FROM snapshot_nope")
                  .status()
                  .IsNotFound());
  QueryOptions live;
  live.isolation = state::IsolationLevel::kReadUncommitted;
  EXPECT_TRUE(
      service_.Execute("SELECT * FROM nope", live).status().IsNotFound());
}

TEST_F(QueryServiceTest, IsolationGateOnLiveTables) {
  // Snapshot isolation and serializable refuse live tables...
  for (auto level : {state::IsolationLevel::kSnapshotIsolation,
                     state::IsolationLevel::kSerializable}) {
    QueryOptions options;
    options.isolation = level;
    EXPECT_TRUE(service_.Execute("SELECT * FROM counts", options)
                    .status()
                    .IsInvalidArgument());
  }
  // ...while both live levels allow them.
  for (auto level : {state::IsolationLevel::kReadUncommitted,
                     state::IsolationLevel::kReadCommittedNoFailures}) {
    QueryOptions options;
    options.isolation = level;
    auto result = service_.Execute("SELECT COUNT(*) AS n FROM counts",
                                   options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->At(0, "n").AsInt64(), 2);
  }
}

TEST_F(QueryServiceTest, MixedLiveAndSnapshotJoinUnderLiveIsolation) {
  QueryOptions live;
  live.isolation = state::IsolationLevel::kReadUncommitted;
  auto result = service_.Execute(
      "SELECT COUNT(*) AS n FROM counts JOIN snapshot_counts "
      "USING(partitionKey)",
      live);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, "n").AsInt64(), 2);
}

// last_exec_stats() publishes the instrumentation of the most recent
// Execute() *overall* under concurrency — whichever query finishes last
// wins — but every published snapshot must be internally consistent: the
// stats of one of the two query shapes issued here, never a blend.
TEST_F(QueryServiceTest, LastExecStatsIsConsistentUnderConcurrentExecute) {
  constexpr int kIterations = 50;
  std::atomic<bool> failed{false};
  auto run = [&](const char* sql) {
    for (int i = 0; i < kIterations && !failed.load(); ++i) {
      if (!service_.Execute(sql).ok()) failed.store(true);
    }
  };
  // Shape A scans two rows; shape B's pushdown point lookup touches one.
  std::thread a(run, "SELECT v FROM snapshot_counts");
  std::thread b(run, "SELECT v FROM snapshot_counts WHERE key=1");
  std::vector<sql::ExecStats> observed;
  for (int i = 0; i < kIterations * 4; ++i) {
    observed.push_back(service_.last_exec_stats());
  }
  a.join();
  b.join();
  ASSERT_FALSE(failed.load());
  for (const sql::ExecStats& stats : observed) {
    const bool shape_a =
        stats.rows_returned == 2 && !stats.used_point_lookup;
    const bool shape_b = stats.rows_returned == 1 && stats.used_point_lookup;
    const bool initial = stats.rows_returned == 0;  // read before any publish
    EXPECT_TRUE(shape_a || shape_b || initial)
        << "torn stats: rows_returned=" << stats.rows_returned
        << " point_lookup=" << stats.used_point_lookup;
  }
  const sql::ExecStats final_stats = service_.last_exec_stats();
  EXPECT_TRUE(final_stats.rows_returned == 1 ||
              final_stats.rows_returned == 2);
}

TEST_F(QueryServiceTest, DirectSnapshotAccessHonorsVersions) {
  auto v2 = service_.GetSnapshotObjects("counts", {Value(int64_t{0})}, 2);
  ASSERT_TRUE(v2.ok()) << v2.status();
  ASSERT_EQ(v2->size(), 1u);
  EXPECT_EQ((*v2)[0].second.Get("v").AsInt64(), 20);
  EXPECT_FALSE(
      service_.GetSnapshotObjects("counts", {Value(int64_t{0})}, 1).ok());
}

}  // namespace
}  // namespace sq::query
