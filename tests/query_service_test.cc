// QueryService unit tests against a hand-populated grid (no engine):
// version pinning via options, retention errors, __versions semantics,
// isolation gating, and resolver behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kv/grid.h"
#include "query/query_service.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"

namespace sq::query {
namespace {

using kv::Object;
using kv::Value;

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest()
      : grid_(kv::GridConfig{.node_count = 2, .partition_count = 8,
                             .backup_count = 0}),
        registry_(&grid_, {.retained_versions = 2, .async_prune = false}),
        service_(&grid_, &registry_),
        store_(&grid_, "counts", 0,
               state::SQueryConfig{.parallelism = 1}) {
    // Three committed snapshots of a two-key state.
    for (int64_t ckpt = 1; ckpt <= 3; ++ckpt) {
      for (int64_t key = 0; key < 2; ++key) {
        Object o;
        o.Set("v", Value(ckpt * 10 + key));
        store_.Put(Value(key), std::move(o));
      }
      EXPECT_TRUE(store_.SnapshotTo(ckpt).ok());
      registry_.OnCheckpointCommitted(ckpt);
    }
  }

  kv::Grid grid_;
  state::SnapshotRegistry registry_;
  QueryService service_;
  state::SQueryStateStore store_;
};

TEST_F(QueryServiceTest, DefaultsToLatestCommitted) {
  auto result = service_.Execute(
      "SELECT SUM(v) AS s FROM snapshot_counts");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, "s").AsInt64(), 30 + 31);
}

TEST_F(QueryServiceTest, OptionsPinSnapshotId) {
  QueryOptions options;
  options.snapshot_id = 2;
  auto result =
      service_.Execute("SELECT SUM(v) AS s FROM snapshot_counts", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, "s").AsInt64(), 20 + 21);
}

TEST_F(QueryServiceTest, WhereSsidOverridesOptions) {
  QueryOptions options;
  options.snapshot_id = 2;
  auto result = service_.Execute(
      "SELECT SUM(v) AS s FROM snapshot_counts WHERE ssid=3", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, "s").AsInt64(), 30 + 31);
}

TEST_F(QueryServiceTest, OutOfRetentionVersionIsRejected) {
  // retained_versions=2: only {2, 3} remain queryable.
  auto result =
      service_.Execute("SELECT v FROM snapshot_counts WHERE ssid=1");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  QueryOptions options;
  options.snapshot_id = 99;
  auto future =
      service_.Execute("SELECT v FROM snapshot_counts", options);
  EXPECT_FALSE(future.ok());
}

TEST_F(QueryServiceTest, VersionsTableListsRetainedOnly) {
  auto result = service_.Execute(
      "SELECT ssid, COUNT(*) AS n FROM snapshot_counts__versions "
      "GROUP BY ssid ORDER BY ssid");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->RowCount(), 2u);  // versions 2 and 3
  EXPECT_EQ(result->At(0, "ssid").AsInt64(), 2);
  EXPECT_EQ(result->At(0, "n").AsInt64(), 2);
  EXPECT_EQ(result->At(1, "ssid").AsInt64(), 3);
}

TEST_F(QueryServiceTest, UnknownTablesAreNotFound) {
  EXPECT_TRUE(service_.Execute("SELECT * FROM snapshot_nope")
                  .status()
                  .IsNotFound());
  QueryOptions live;
  live.isolation = state::IsolationLevel::kReadUncommitted;
  EXPECT_TRUE(
      service_.Execute("SELECT * FROM nope", live).status().IsNotFound());
}

TEST_F(QueryServiceTest, IsolationGateOnLiveTables) {
  // Snapshot isolation and serializable refuse live tables...
  for (auto level : {state::IsolationLevel::kSnapshotIsolation,
                     state::IsolationLevel::kSerializable}) {
    QueryOptions options;
    options.isolation = level;
    EXPECT_TRUE(service_.Execute("SELECT * FROM counts", options)
                    .status()
                    .IsInvalidArgument());
  }
  // ...while both live levels allow them.
  for (auto level : {state::IsolationLevel::kReadUncommitted,
                     state::IsolationLevel::kReadCommittedNoFailures}) {
    QueryOptions options;
    options.isolation = level;
    auto result = service_.Execute("SELECT COUNT(*) AS n FROM counts",
                                   options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->At(0, "n").AsInt64(), 2);
  }
}

TEST_F(QueryServiceTest, MixedLiveAndSnapshotJoinUnderLiveIsolation) {
  QueryOptions live;
  live.isolation = state::IsolationLevel::kReadUncommitted;
  auto result = service_.Execute(
      "SELECT COUNT(*) AS n FROM counts JOIN snapshot_counts "
      "USING(partitionKey)",
      live);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->At(0, "n").AsInt64(), 2);
}

// ExecuteWithStats() returns the instrumentation of exactly the query that
// was run: under concurrent callers each thread must always see its own
// query shape's numbers, never the other thread's (the failure mode of the
// old shared last-stats slot).
TEST_F(QueryServiceTest, ExecuteWithStatsIsPerQueryUnderConcurrency) {
  constexpr int kIterations = 50;
  std::atomic<bool> failed{false};
  std::atomic<bool> mismatched{false};
  auto run = [&](const char* sql, int64_t want_rows, bool want_point_lookup) {
    for (int i = 0; i < kIterations && !failed.load(); ++i) {
      auto result = service_.ExecuteWithStats(sql);
      if (!result.ok()) {
        failed.store(true);
        return;
      }
      if (result->stats.rows_returned != want_rows ||
          result->stats.used_point_lookup != want_point_lookup) {
        mismatched.store(true);
      }
    }
  };
  // Shape A scans two rows; shape B's pushdown point lookup touches one.
  std::thread a(run, "SELECT v FROM snapshot_counts", 2, false);
  std::thread b(run, "SELECT v FROM snapshot_counts WHERE key=1", 1, true);
  a.join();
  b.join();
  ASSERT_FALSE(failed.load());
  EXPECT_FALSE(mismatched.load()) << "a query observed another query's stats";
}

TEST_F(QueryServiceTest, DirectSnapshotAccessHonorsVersions) {
  auto v2 = service_.GetSnapshotObjects("counts", {Value(int64_t{0})}, 2);
  ASSERT_TRUE(v2.ok()) << v2.status();
  ASSERT_EQ(v2->size(), 1u);
  EXPECT_EQ((*v2)[0].second.Get("v").AsInt64(), 20);
  EXPECT_FALSE(
      service_.GetSnapshotObjects("counts", {Value(int64_t{0})}, 1).ok());
}

}  // namespace
}  // namespace sq::query
