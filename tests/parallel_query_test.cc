// Differential tests for partition-parallel query execution: every query in
// the matrix must produce identical results at parallelism 1 / 2 / 8, with
// pushdown on and off, and (where comparable) through a resolver that only
// offers the legacy whole-table ScanTable fallback. Also covers the pushdown
// instrumentation (rows_scanned / point lookups) and a concurrent
// writer+query hammer for the sanitizer jobs.

#include <gtest/gtest.h>
#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "kv/grid.h"
#include "query/query_service.h"
#include "sql/executor.h"
#include "state/isolation.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"
#include "storage/snapshot_log.h"

namespace sq::query {
namespace {

using kv::Object;
using kv::Value;

constexpr int32_t kPartitions = 32;
constexpr int64_t kKeys = 3000;

/// Rows ordered for multiset comparison. SQL row order without ORDER BY is
/// unspecified (and the legacy scan, the parallel scan, and the hash-grouping
/// paths genuinely order differently), so unordered queries compare sorted.
std::vector<sql::Row> SortedRows(const sql::ResultSet& result) {
  std::vector<sql::Row> rows = result.rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool HasOrderBy(const std::string& sql) {
  return sql.find("ORDER BY") != std::string::npos;
}

class ParallelQueryTest : public ::testing::Test {
 protected:
  ParallelQueryTest()
      : grid_(kv::GridConfig{.node_count = 2,
                             .partition_count = kPartitions,
                             .backup_count = 0}),
        registry_(&grid_, {.retained_versions = 3, .async_prune = false}),
        service_(&grid_, &registry_),
        store_(&grid_, "metrics", 0, state::SQueryConfig{.parallelism = 1}),
        dims_(&grid_, "dims", 0, state::SQueryConfig{.parallelism = 1}) {
    // Deterministic pseudo-random table: integer columns only, so SUM/AVG
    // are exact under every accumulation order.
    std::mt19937_64 rng(20260806);
    for (int64_t ckpt = 1; ckpt <= 2; ++ckpt) {
      for (int64_t key = 0; key < kKeys; ++key) {
        Object o;
        o.Set("v", Value(static_cast<int64_t>(rng() % 1000)));
        o.Set("g", Value(key % 8));
        o.Set("zone", Value("zone-" + std::to_string(key % 5)));
        store_.Put(Value(key), std::move(o));
      }
      EXPECT_TRUE(store_.SnapshotTo(ckpt).ok());
      registry_.OnCheckpointCommitted(ckpt);
    }
    for (int64_t g = 0; g < 8; ++g) {
      Object o;
      o.Set("g", Value(g));
      o.Set("name", Value("group-" + std::to_string(g)));
      dims_.Put(Value(g), std::move(o));
    }
  }

  sql::ResultSet MustExecute(const std::string& sql,
                             const QueryOptions& options) {
    auto result = service_.Execute(sql, options);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? *result : sql::ResultSet{};
  }

  /// Runs `sql` across the whole execution matrix and checks every variant
  /// against the (parallelism=1, pushdown=on) baseline.
  void CheckDifferential(const std::string& sql,
                         state::IsolationLevel isolation) {
    QueryOptions base;
    base.isolation = isolation;
    base.parallelism = 1;
    const sql::ResultSet expected = MustExecute(sql, base);
    const bool ordered = HasOrderBy(sql);
    const auto expected_rows = SortedRows(expected);
    for (int32_t parallelism : {1, 2, 8}) {
      for (bool pushdown : {true, false}) {
        QueryOptions options = base;
        options.parallelism = parallelism;
        options.pushdown = pushdown;
        const sql::ResultSet got = MustExecute(sql, options);
        ASSERT_EQ(got.columns, expected.columns)
            << sql << " [parallelism=" << parallelism
            << " pushdown=" << pushdown << "]";
        if (ordered) {
          ASSERT_EQ(got.rows, expected.rows)
              << sql << " [parallelism=" << parallelism
              << " pushdown=" << pushdown << "]";
        } else {
          ASSERT_EQ(SortedRows(got), expected_rows)
              << sql << " [parallelism=" << parallelism
              << " pushdown=" << pushdown << "]";
        }
        // Columnar/row differential: the same variant with the vectorized
        // engine forced off must be *bit-identical*, row for row, unsorted —
        // both engines share one deterministic scan order per partition, so
        // representatives, group first-seen order and ORDER BY tie-breaks
        // must all agree exactly.
        QueryOptions row_options = options;
        row_options.force_row_scan = true;
        const sql::ResultSet row_engine = MustExecute(sql, row_options);
        ASSERT_EQ(row_engine.columns, got.columns)
            << sql << " [parallelism=" << parallelism
            << " pushdown=" << pushdown << " row-engine]";
        ASSERT_EQ(row_engine.rows, got.rows)
            << sql << " [parallelism=" << parallelism
            << " pushdown=" << pushdown << " row-engine]";
      }
    }
  }

  kv::Grid grid_;
  state::SnapshotRegistry registry_;
  QueryService service_;
  state::SQueryStateStore store_;
  state::SQueryStateStore dims_;
};

TEST_F(ParallelQueryTest, LiveQueriesMatchAcrossMatrix) {
  const std::vector<std::string> queries = {
      "SELECT key, v FROM metrics",
      "SELECT key, v, zone FROM metrics WHERE v > 500 AND g = 3",
      "SELECT v FROM metrics WHERE key = 42",
      "SELECT v FROM metrics WHERE key IN (1, 5, 9, 2999, 7777)",
      "SELECT key FROM metrics WHERE key IN (1, 2, 3) AND key IN (2, 3, 4)",
      "SELECT COUNT(*) AS n, SUM(v) AS s, MIN(v) AS mn, MAX(v) AS mx, "
      "AVG(v) AS a FROM metrics",
      "SELECT COUNT(*) AS n, SUM(v) AS s FROM metrics WHERE v > 250",
      "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM metrics GROUP BY g",
      "SELECT zone, COUNT(DISTINCT v) AS d FROM metrics GROUP BY zone",
      "SELECT DISTINCT g FROM metrics",
      "SELECT key, v FROM metrics ORDER BY v DESC, key LIMIT 10",
      "SELECT g, SUM(v) AS s FROM metrics GROUP BY g "
      "HAVING COUNT(*) > 10 ORDER BY s LIMIT 3",
      "SELECT m.key, m.v, d.name FROM metrics AS m JOIN dims AS d USING(g) "
      "WHERE m.v < 100",
  };
  for (const auto& level : {state::IsolationLevel::kReadUncommitted,
                            state::IsolationLevel::kReadCommittedNoFailures}) {
    for (const std::string& sql : queries) {
      CheckDifferential(sql, level);
    }
  }
}

TEST_F(ParallelQueryTest, SnapshotQueriesMatchAcrossMatrix) {
  const std::vector<std::string> queries = {
      "SELECT key, v, ssid FROM snapshot_metrics",
      "SELECT SUM(v) AS s FROM snapshot_metrics WHERE ssid = 1",
      "SELECT v FROM snapshot_metrics WHERE key = 7",
      "SELECT g, COUNT(*) AS n FROM snapshot_metrics WHERE v > 300 "
      "GROUP BY g ORDER BY g",
      "SELECT ssid, COUNT(*) AS n FROM snapshot_metrics__versions "
      "GROUP BY ssid ORDER BY ssid",
      "SELECT v, ssid FROM snapshot_metrics__versions WHERE key = 11",
  };
  for (const auto& level : {state::IsolationLevel::kSnapshotIsolation,
                            state::IsolationLevel::kSerializable}) {
    for (const std::string& sql : queries) {
      CheckDifferential(sql, level);
    }
  }
}

/// The executor must behave identically when the resolver cannot offer
/// partition-addressable sources at all (legacy fallback path).
TEST_F(ParallelQueryTest, ScanTableOnlyResolverMatchesSourceScan) {
  class ScanOnlyResolver : public sql::TableResolver {
   public:
    explicit ScanOnlyResolver(QueryService* service) : service_(service) {}
    Result<std::vector<Object>> ScanTable(
        const std::string& table,
        std::optional<int64_t> requested_ssid) override {
      return service_->ScanTable(table, requested_ssid);
    }
    // OpenTableSource deliberately not overridden: always null.
   private:
    QueryService* service_;
  };
  ScanOnlyResolver legacy(&service_);
  for (const std::string& sql : {
           std::string("SELECT key, v, ssid FROM snapshot_metrics"),
           std::string("SELECT SUM(v) AS s, COUNT(*) AS n "
                       "FROM snapshot_metrics WHERE v > 500"),
           std::string("SELECT v FROM snapshot_metrics WHERE key = 42"),
       }) {
    sql::ExecOptions exec;
    auto via_fallback = sql::ExecuteSql(sql, &legacy, exec);
    ASSERT_TRUE(via_fallback.ok()) << via_fallback.status();
    QueryOptions options;
    options.parallelism = 8;
    const sql::ResultSet via_source = MustExecute(sql, options);
    EXPECT_EQ(via_source.columns, via_fallback->columns) << sql;
    EXPECT_EQ(SortedRows(via_source), SortedRows(*via_fallback)) << sql;
  }
}

/// The vectorized engine must report itself, and the force-row knob must
/// genuinely disable it.
TEST_F(ParallelQueryTest, VectorizedEngineIsReportedAndCanBeForcedOff) {
  QueryOptions options;
  auto result = service_.ExecuteWithStats(
      "SELECT COUNT(*) AS n FROM snapshot_metrics", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stats.used_vectorized);
  EXPECT_GT(result->stats.batches_scanned, 0);
  EXPECT_EQ(result->stats.batch_rows, kKeys);

  options.force_row_scan = true;
  result = service_.ExecuteWithStats(
      "SELECT COUNT(*) AS n FROM snapshot_metrics", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->stats.used_vectorized);
  EXPECT_EQ(result->stats.batches_scanned, 0);
  EXPECT_EQ(result->stats.batch_rows, 0);

  // Live tables batch too.
  options.force_row_scan = false;
  options.isolation = state::IsolationLevel::kReadCommittedNoFailures;
  result = service_.ExecuteWithStats("SELECT COUNT(*) AS n FROM metrics",
                                     options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stats.used_vectorized);
}

/// A snapshot table recovered from a durable log whose history spans the
/// format upgrade — old segments hold row-at-a-time delta records, newer
/// ones columnar records — must serve both engines with identical results.
TEST(MixedSegmentQueryTest, RowAndColumnarSegmentsServeBothEngines) {
  std::string tmpl = "/tmp/sq_mixed_segments_XXXXXX";
  const std::string dir = ::mkdtemp(tmpl.data());
  const auto entry = [](int64_t key, int64_t v, const std::string& zone) {
    Object o;
    o.Set("v", Value(v));
    o.Set("zone", Value(zone));
    return storage::SnapshotLog::DeltaEntry{Value(key), false, std::move(o)};
  };
  {
    // Pre-upgrade writer: row-format segments.
    auto log = storage::SnapshotLog::Open(
        {.dir = dir, .segment_bytes = 1, .columnar_segments = false});
    ASSERT_TRUE(log.ok());
    std::vector<storage::SnapshotLog::DeltaEntry> delta;
    for (int64_t k = 0; k < 100; ++k) {
      delta.push_back(entry(k, k, "zone-" + std::to_string(k % 3)));
    }
    ASSERT_TRUE((*log)->AppendDelta("snapshot_mixed", 1, 0, delta).ok());
    ASSERT_TRUE((*log)->Commit(1).ok());
  }
  kv::Grid grid(kv::GridConfig{});
  state::SnapshotRegistry registry(
      &grid, {.retained_versions = 3, .async_prune = false});
  {
    // Post-upgrade writer appends columnar segments to the same log.
    auto log = storage::SnapshotLog::Open(
        {.dir = dir, .segment_bytes = 1, .columnar_segments = true});
    ASSERT_TRUE(log.ok());
    std::vector<storage::SnapshotLog::DeltaEntry> delta;
    for (int64_t k = 0; k < 100; k += 7) delta.push_back(entry(k, k + 1000, "hot"));
    delta.push_back(entry(200, 42, "new"));
    delta.push_back(storage::SnapshotLog::DeltaEntry{Value(int64_t{3}), true,
                                                     Object()});
    ASSERT_TRUE((*log)->AppendDelta("snapshot_mixed", 2, 0, delta).ok());
    ASSERT_TRUE((*log)->Commit(2).ok());

    ASSERT_TRUE((*log)->ReplayInto(&grid, /*retained_versions=*/3).ok());
    registry.RestoreCommitted((*log)->CommittedIds());
  }
  ASSERT_EQ(registry.latest_committed(), 2);

  QueryService service(&grid, &registry);
  for (const std::string& sql : {
           std::string("SELECT key, v, zone, ssid FROM snapshot_mixed"),
           std::string("SELECT SUM(v) AS s, COUNT(*) AS n FROM "
                       "snapshot_mixed"),
           std::string("SELECT zone, COUNT(*) AS n FROM snapshot_mixed "
                       "GROUP BY zone ORDER BY zone"),
           std::string("SELECT key, v FROM snapshot_mixed WHERE v >= 1000"),
           std::string("SELECT key, v, ssid FROM snapshot_mixed__versions"),
           std::string("SELECT SUM(v) AS s FROM snapshot_mixed "
                       "WHERE ssid = 1"),
       }) {
    for (int32_t parallelism : {1, 8}) {
      QueryOptions columnar;
      columnar.parallelism = parallelism;
      auto vectorized = service.Execute(sql, columnar);
      ASSERT_TRUE(vectorized.ok()) << sql << ": " << vectorized.status();
      QueryOptions row = columnar;
      row.force_row_scan = true;
      auto rows = service.Execute(sql, row);
      ASSERT_TRUE(rows.ok()) << sql << ": " << rows.status();
      EXPECT_EQ(vectorized->columns, rows->columns) << sql;
      EXPECT_EQ(vectorized->rows, rows->rows)
          << sql << " [parallelism=" << parallelism << "]";
    }
  }
  // Spot checks across the format boundary: count reflects the columnar
  // insert and tombstone over the row-format base.
  auto count = service.Execute("SELECT COUNT(*) AS n FROM snapshot_mixed", {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0], Value(int64_t{100}));  // 100 base +1 -1
  auto hot = service.Execute(
      "SELECT COUNT(*) AS n FROM snapshot_mixed WHERE zone = 'hot'", {});
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->rows[0][0], Value(int64_t{15}));  // ceil(100/7), key 3 gone

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST_F(ParallelQueryTest, KeyPushdownScansOnlyMatchingPartitions) {
  QueryOptions options;
  options.isolation = state::IsolationLevel::kReadCommittedNoFailures;
  auto result = service_.ExecuteWithStats(
      "SELECT v FROM metrics WHERE key = 42", options);
  ASSERT_TRUE(result.ok()) << result.status();
  const sql::ExecStats stats = result->stats;
  EXPECT_TRUE(stats.used_point_lookup);
  EXPECT_TRUE(stats.used_pushdown);
  EXPECT_EQ(stats.rows_scanned, 1);
  EXPECT_EQ(stats.partitions_scanned, 1);

  // Full scan for contrast: every partition, every row.
  result = service_.ExecuteWithStats("SELECT COUNT(*) AS n FROM metrics",
                                     options);
  ASSERT_TRUE(result.ok()) << result.status();
  const sql::ExecStats full = result->stats;
  EXPECT_FALSE(full.used_point_lookup);
  EXPECT_EQ(full.rows_scanned, kKeys);
  EXPECT_EQ(full.partitions_scanned, kPartitions);
}

TEST_F(ParallelQueryTest, PredicatePushdownSkipsMaterialization) {
  QueryOptions options;
  options.isolation = state::IsolationLevel::kReadCommittedNoFailures;
  auto result = service_.ExecuteWithStats(
      "SELECT key FROM metrics WHERE v > 900 AND g = 1", options);
  ASSERT_TRUE(result.ok()) << result.status();
  const sql::ExecStats stats = result->stats;
  EXPECT_TRUE(stats.used_pushdown);
  EXPECT_EQ(stats.rows_scanned, kKeys);
  EXPECT_EQ(stats.rows_returned,
            static_cast<int64_t>(result->result.RowCount()));
  EXPECT_LT(stats.rows_returned, stats.rows_scanned);

  options.pushdown = false;
  result = service_.ExecuteWithStats(
      "SELECT key FROM metrics WHERE v > 900 AND g = 1", options);
  ASSERT_TRUE(result.ok()) << result.status();
  const sql::ExecStats off = result->stats;
  EXPECT_FALSE(off.used_pushdown);
  EXPECT_EQ(off.rows_returned, off.rows_scanned);  // everything materialized
}

TEST_F(ParallelQueryTest, ParallelismIsReportedAndCapped) {
  QueryOptions options;
  options.isolation = state::IsolationLevel::kReadCommittedNoFailures;
  options.parallelism = 4;
  auto result =
      service_.ExecuteWithStats("SELECT COUNT(*) AS n FROM metrics", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.parallelism, 4);
  options.parallelism = 1;
  result =
      service_.ExecuteWithStats("SELECT COUNT(*) AS n FROM metrics", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.parallelism, 1);
}

/// Aggregate errors must propagate deterministically out of parallel workers.
TEST_F(ParallelQueryTest, ErrorsPropagateFromParallelScan) {
  QueryOptions options;
  options.isolation = state::IsolationLevel::kReadCommittedNoFailures;
  options.parallelism = 8;
  auto result = service_.Execute("SELECT SUM(zone) AS s FROM metrics",
                                 options);
  EXPECT_FALSE(result.ok());
}

/// Sanitizer target: queries race against live writes. Results are not
/// asserted (live scans are intentionally not point-in-time); the invariant
/// under test is the absence of data races.
TEST_F(ParallelQueryTest, ConcurrentWritesAndParallelQueries) {
  std::atomic<bool> stop{false};
  std::thread writer([this, &stop] {
    std::mt19937_64 rng(7);
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Object o;
      o.Set("v", Value(static_cast<int64_t>(rng() % 1000)));
      o.Set("g", Value(i % 8));
      o.Set("zone", Value("zone-" + std::to_string(i % 5)));
      store_.Put(Value(i % kKeys), std::move(o));
      ++i;
    }
  });
  QueryOptions options;
  options.isolation = state::IsolationLevel::kReadCommittedNoFailures;
  options.parallelism = 8;
  for (int iter = 0; iter < 25; ++iter) {
    auto result = service_.Execute(
        "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM metrics "
        "WHERE v >= 0 GROUP BY g",
        options);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace sq::query
