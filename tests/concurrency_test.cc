// Concurrency-hygiene tests: the lock-rank deadlock detector (death tests),
// the rank policy's allowed shapes (equal-rank nesting, release-then-lower,
// unranked exemption), and hammer tests that drive the annotated hot paths
// (histogram summaries, snapshot-table failover under ParallelFor, durable
// checkpoint + replay) with rank validation forced on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "kv/grid.h"
#include "kv/snapshot_table.h"
#include "kv/value.h"
#include "state/snapshot_registry.h"

namespace sq {
namespace {

// Forces rank checking on (off) for the duration of a scope, restoring the
// previous setting afterwards, so these tests behave identically in Debug
// (default on) and Release (default off) builds.
class ScopedRankChecks {
 public:
  explicit ScopedRankChecks(bool enabled)
      : previous_(Mutex::RankCheckingEnabled()) {
    Mutex::SetRankCheckingEnabled(enabled);
  }
  ~ScopedRankChecks() { Mutex::SetRankCheckingEnabled(previous_); }

 private:
  bool previous_;
};

TEST(LockRankTest, InvertedAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex::SetRankCheckingEnabled(true);
        Mutex outer(lockrank::kMetricsRegistry, "test.outer");
        Mutex inner(lockrank::kStorageLog, "test.inner");
        outer.Lock();
        inner.Lock();  // 700 -> 200: rank decreases
      },
      "lock rank inversion");
}

TEST(LockRankTest, AbortMessagePrintsBothStacks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The report names the acquired lock, lists the held-lock stack, and shows
  // the would-be stack with the offending acquisition appended.
  EXPECT_DEATH(
      {
        Mutex::SetRankCheckingEnabled(true);
        Mutex a(lockrank::kStateRegistry, "test.registry");
        Mutex b(lockrank::kKvPartition, "test.partition");
        Mutex c(lockrank::kJobCheckpoint, "test.checkpoint");
        a.Lock();
        b.Lock();  // 300 -> 500: fine
        c.Lock();  // -> 100: inversion; both held locks must be reported
      },
      "test\\.registry(.|\n)*test\\.partition(.|\n)*test\\.checkpoint");
}

TEST(LockRankTest, SharedMutexParticipatesInRanking) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex::SetRankCheckingEnabled(true);
        SharedMutex grid(lockrank::kKvGrid, "test.grid");
        Mutex log(lockrank::kStorageLog, "test.log");
        grid.LockShared();
        log.Lock();  // 400 -> 200 even via a shared hold: inversion
      },
      "lock rank inversion");
}

// The mutexes of the non-death ordering tests are static: TSan's deadlock
// detector keys lock-order edges by address, and stack locals of successive
// tests reuse addresses, merging unrelated acquisition orders into phantom
// cycles.
TEST(LockRankTest, IncreasingAndEqualRanksAllowed) {
  ScopedRankChecks checks(true);
  static Mutex low(lockrank::kStorageLog, "test.low");
  static Mutex mid(lockrank::kKvPartition, "test.mid.a");
  static Mutex mid2(lockrank::kKvPartition, "test.mid.b");
  static Mutex high(lockrank::kLeaf, "test.high");
  low.Lock();
  mid.Lock();
  mid2.Lock();  // equal rank: the failover promotion shape
  high.Lock();
  high.Unlock();
  mid2.Unlock();
  mid.Unlock();
  low.Unlock();
}

TEST(LockRankTest, ReleaseRestoresOrder) {
  ScopedRankChecks checks(true);
  static Mutex high(lockrank::kLogging, "test.high");
  static Mutex low(lockrank::kJobCheckpoint, "test.low");
  high.Lock();
  high.Unlock();
  low.Lock();  // not an inversion: the high-rank lock is no longer held
  low.Unlock();
}

TEST(LockRankTest, UnrankedMutexesAreExempt) {
  ScopedRankChecks checks(true);
  static Mutex unranked;
  static Mutex high(lockrank::kLogging, "test.logging");
  static Mutex low(lockrank::kJobCheckpoint, "test.low");
  high.Lock();
  unranked.Lock();  // unranked acquisition below a ranked hold: fine
  high.Unlock();
  low.Lock();  // the only remaining hold is unranked, so no comparison
  low.Unlock();
  unranked.Unlock();
}

TEST(LockRankTest, TryLockParticipates) {
  ScopedRankChecks checks(true);
  static Mutex mu(lockrank::kKvGrid, "test.trylock");
  ASSERT_TRUE(mu.TryLock());
  static Mutex higher(lockrank::kLeaf, "test.trylock.inner");
  higher.Lock();  // TryLock recorded the hold, so ordering still applies
  higher.Unlock();
  mu.Unlock();
}

TEST(LockRankTest, ChecksCanBeDisabledAtRuntime) {
  ScopedRankChecks checks(false);
  static Mutex outer(lockrank::kLogging, "test.outer");
  static Mutex inner(lockrank::kJobCheckpoint, "test.inner");
  outer.Lock();
  inner.Lock();  // inverted, but validation is off: must not abort
  inner.Unlock();
  outer.Unlock();
}

// Regression for a pre-existing read-skew bug: Summarize used to take the
// histogram lock once per statistic, so a concurrent Record could land
// between the p50 read and the p99 read and produce p50 > p99. One critical
// section makes every summary internally consistent.
TEST(HistogramConsistencyTest, SummariesAreInternallyConsistentUnderWrites) {
  ScopedRankChecks checks(true);
  Histogram histogram;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&histogram, &stop, t] {
      int64_t v = t + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        histogram.Record(v);
        v = (v * 2862933555777941757LL + 3037000493LL) & 0xFFFFF;
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    const Histogram::Summary summary = histogram.Summarize();
    ASSERT_LE(summary.p0, summary.p50);
    ASSERT_LE(summary.p50, summary.p90);
    ASSERT_LE(summary.p90, summary.p99);
    ASSERT_LE(summary.p99, summary.p999);
    ASSERT_LE(summary.p999, summary.max);
    if (summary.count > 0) {
      ASSERT_GE(summary.mean, 0.0);
      ASSERT_LE(summary.p0, summary.max);
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

// ParallelFor workers hammer a replicated SnapshotTable while the main
// thread repeatedly fails partition primaries. Exercises the equal-rank
// partition nesting in FailPartitionPrimary and the pool's batch handoff
// with rank validation on; under TSan this doubles as a race check on the
// promotion path.
TEST(FailoverHammerTest, ParallelWritesSurvivePrimaryFailover) {
  ScopedRankChecks checks(true);
  kv::Partitioner partitioner(8);
  kv::SnapshotTable table("hammer", &partitioner, /*backup_count=*/1);
  ThreadPool pool(4);
  for (int round = 1; round <= 20; ++round) {
    pool.ParallelFor(64, 4, [&table, round](int32_t index) {
      const kv::Value key(static_cast<int64_t>(index));
      kv::Object object;
      object.Set("v", kv::Value(static_cast<int64_t>(round * 1000 + index)));
      table.Write(round, key, std::move(object));
    });
    table.FailPartitionPrimary(round % 8);
    // Promotion copies the backup, which saw every write, so nothing from
    // this round (or earlier rounds) may be lost.
    for (int32_t index = 0; index < 64; ++index) {
      const auto value = table.GetAt(kv::Value(static_cast<int64_t>(index)),
                                     round);
      ASSERT_TRUE(value.has_value()) << "round " << round << " key " << index;
    }
  }
}

// Drives the registry's commit + prune flow (two ranked mutexes and a
// background thread descending into grid and partition locks) with rank
// validation forced on.
TEST(RegistryRankTest, CommitAndPruneUnderRankChecks) {
  ScopedRankChecks checks(true);
  kv::Grid grid(kv::GridConfig{.node_count = 2, .partition_count = 4,
                               .backup_count = 1});
  state::SnapshotRegistry registry(
      &grid, {.retained_versions = 2, .async_prune = true});
  kv::SnapshotTable* table = grid.GetOrCreateSnapshotTable("snapshot_op");
  for (int64_t ckpt = 1; ckpt <= 6; ++ckpt) {
    for (int64_t key = 0; key < 32; ++key) {
      kv::Object object;
      object.Set("v", kv::Value(ckpt * 100 + key));
      table->Write(ckpt, kv::Value(key), std::move(object));
    }
    registry.OnCheckpointCommitted(ckpt);
  }
  registry.FlushPruning();
  EXPECT_EQ(registry.latest_committed(), 6);
  const std::vector<int64_t> retained = registry.RetainedVersions();
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained.front(), 5);
  EXPECT_EQ(retained.back(), 6);
  // Pruned versions are gone; retained ones are fully readable.
  for (int64_t key = 0; key < 32; ++key) {
    const auto value = table->GetAt(kv::Value(key), 6);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->Get("v").AsInt64(), 600 + key);
  }
}

}  // namespace
}  // namespace sq
