#include <gtest/gtest.h>

#include "dataflow/aligner.h"

namespace sq::dataflow {
namespace {

using Outcome = ChannelAligner::Outcome;
using DataAction = ChannelAligner::DataAction;

TEST(AlignedTest, SingleUpstreamCompletesImmediately) {
  ChannelAligner aligner(CheckpointMode::kAligned, {7});
  const Outcome out = aligner.OnMarker(7, 1, /*latest_committed=*/0);
  EXPECT_TRUE(out.alignment_started);
  EXPECT_EQ(out.complete, 1);
  EXPECT_EQ(aligner.pending_checkpoint(), 0);
}

TEST(AlignedTest, BuffersMarkedChannelsUntilAllMarkersArrive) {
  ChannelAligner aligner(CheckpointMode::kAligned, {1, 2});
  Outcome out = aligner.OnMarker(1, 1, 0);
  EXPECT_TRUE(out.alignment_started);
  EXPECT_EQ(out.complete, 0);
  // The marked channel blocks; the unmarked one flows.
  EXPECT_EQ(aligner.ActionForData(1), DataAction::kBuffer);
  EXPECT_EQ(aligner.ActionForData(2), DataAction::kProcess);
  out = aligner.OnMarker(2, 1, 0);
  EXPECT_EQ(out.complete, 1);
  EXPECT_EQ(aligner.ActionForData(1), DataAction::kProcess);
}

TEST(AlignedTest, IgnoresStaleMarkers) {
  ChannelAligner aligner(CheckpointMode::kAligned, {1, 2});
  // Already committed.
  Outcome out = aligner.OnMarker(1, 3, /*latest_committed=*/3);
  EXPECT_FALSE(out.alignment_started);
  EXPECT_EQ(aligner.pending_checkpoint(), 0);
  // Already aborted: the coordinator's abort broadcast overtook the marker.
  aligner.OnAbort(5);
  out = aligner.OnMarker(1, 5, 3);
  EXPECT_FALSE(out.alignment_started);
  EXPECT_EQ(aligner.pending_checkpoint(), 0);
}

// Regression for the two-concurrent-markers corruption: a newer checkpoint's
// marker arriving while a different id is still aligning used to leave the
// stale `aligned` set (and the worker's buffer) attached to the new
// alignment — the new checkpoint then completed prematurely, snapshotting
// state that already included post-marker records, and the buffer was
// replayed after the wrong snapshot.
TEST(AlignedTest, NewerMarkerSupersedesAlignmentInProgress) {
  ChannelAligner aligner(CheckpointMode::kAligned, {1, 2});
  // Checkpoint 1 starts aligning: channel 1 is marked and blocked.
  ASSERT_TRUE(aligner.OnMarker(1, 1, 0).alignment_started);
  EXPECT_EQ(aligner.ActionForData(1), DataAction::kBuffer);

  // Checkpoint 2's marker arrives on channel 2 before checkpoint 1 ever
  // finished. The old alignment is dead; its buffer must drain first, the
  // aligned set must reset — and checkpoint 2 must NOT be complete (channel
  // 1's marker for it has not arrived).
  const Outcome out = aligner.OnMarker(2, 2, 0);
  EXPECT_TRUE(out.alignment_started);
  EXPECT_TRUE(out.drain_buffered_first);
  EXPECT_EQ(out.complete, 0) << "stale aligned set completed checkpoint 2";
  EXPECT_EQ(aligner.pending_checkpoint(), 2);
  // Channel 1 (unmarked for checkpoint 2) flows; channel 2 blocks.
  EXPECT_EQ(aligner.ActionForData(1), DataAction::kProcess);
  EXPECT_EQ(aligner.ActionForData(2), DataAction::kBuffer);

  // Checkpoint 1's remaining marker is stale and must not resurrect it.
  EXPECT_EQ(aligner.OnMarker(2, 1, 0).complete, 0);
  EXPECT_EQ(aligner.pending_checkpoint(), 2);

  // Checkpoint 2 completes only once its own marker set is full.
  EXPECT_EQ(aligner.OnMarker(1, 2, 0).complete, 2);
}

TEST(AlignedTest, AbortReleasesAlignmentAndBlocksItsMarkers) {
  ChannelAligner aligner(CheckpointMode::kAligned, {1, 2});
  ASSERT_TRUE(aligner.OnMarker(1, 4, 0).alignment_started);
  EXPECT_EQ(aligner.ActionForData(1), DataAction::kBuffer);

  const Outcome out = aligner.OnAbort(4);
  EXPECT_TRUE(out.drain_buffered_first);
  EXPECT_EQ(aligner.pending_checkpoint(), 0);
  EXPECT_EQ(aligner.ActionForData(1), DataAction::kProcess);
  // The aborted checkpoint's in-flight marker on the other channel must not
  // reopen the barrier.
  EXPECT_FALSE(aligner.OnMarker(2, 4, 0).alignment_started);
}

TEST(AlignedTest, EofFromLastStragglerCompletesAlignment) {
  ChannelAligner aligner(CheckpointMode::kAligned, {1, 2});
  ASSERT_TRUE(aligner.OnMarker(1, 1, 0).alignment_started);
  const Outcome out = aligner.OnEof(2);
  EXPECT_EQ(out.complete, 1);
  EXPECT_TRUE(aligner.has_active_upstreams());
  EXPECT_FALSE(aligner.OnEof(1).complete);
  EXPECT_FALSE(aligner.has_active_upstreams());
}

TEST(UnalignedTest, FirstMarkerBeginsCaptureAndLogsUnmarkedChannels) {
  ChannelAligner aligner(CheckpointMode::kUnaligned, {1, 2});
  Outcome out = aligner.OnMarker(1, 1, 0);
  EXPECT_TRUE(out.alignment_started);
  EXPECT_EQ(out.begin_capture, 1);
  EXPECT_EQ(out.complete, 0);
  // No channel ever blocks; data racing the barrier on the unmarked channel
  // is processed and logged.
  EXPECT_EQ(aligner.ActionForData(1), DataAction::kProcess);
  EXPECT_EQ(aligner.ActionForData(2), DataAction::kProcessAndLog);

  out = aligner.OnMarker(2, 1, 0);
  EXPECT_EQ(out.complete, 1);
  EXPECT_EQ(aligner.ActionForData(2), DataAction::kProcess);
}

TEST(UnalignedTest, SingleUpstreamBeginsAndCompletesInOneOutcome) {
  ChannelAligner aligner(CheckpointMode::kUnaligned, {3});
  const Outcome out = aligner.OnMarker(3, 2, 0);
  EXPECT_EQ(out.begin_capture, 2);
  EXPECT_EQ(out.complete, 2);
}

TEST(UnalignedTest, NewerMarkerAbandonsCaptureInFlight) {
  ChannelAligner aligner(CheckpointMode::kUnaligned, {1, 2});
  ASSERT_EQ(aligner.OnMarker(1, 1, 0).begin_capture, 1);

  const Outcome out = aligner.OnMarker(2, 2, 0);
  EXPECT_EQ(out.abandoned_capture, 1);
  EXPECT_EQ(out.begin_capture, 2);
  EXPECT_EQ(out.complete, 0);
  EXPECT_EQ(aligner.pending_checkpoint(), 2);
  // Checkpoint 1's straggler marker is stale.
  EXPECT_EQ(aligner.OnMarker(2, 1, 0).begin_capture, 0);
  // Checkpoint 2 completes normally.
  EXPECT_EQ(aligner.OnMarker(1, 2, 0).complete, 2);
}

TEST(UnalignedTest, AbortAbandonsCapture) {
  ChannelAligner aligner(CheckpointMode::kUnaligned, {1, 2});
  ASSERT_EQ(aligner.OnMarker(1, 3, 0).begin_capture, 3);
  const Outcome out = aligner.OnAbort(3);
  EXPECT_EQ(out.abandoned_capture, 3);
  EXPECT_EQ(aligner.pending_checkpoint(), 0);
  EXPECT_EQ(aligner.ActionForData(2), DataAction::kProcess);
  EXPECT_EQ(aligner.OnMarker(2, 3, 0).begin_capture, 0);
}

TEST(UnalignedTest, EofFromLastPendingUpstreamCompletesCapture) {
  ChannelAligner aligner(CheckpointMode::kUnaligned, {1, 2});
  ASSERT_EQ(aligner.OnMarker(1, 1, 0).begin_capture, 1);
  EXPECT_EQ(aligner.OnEof(2).complete, 1);
}

}  // namespace
}  // namespace sq::dataflow
