// Columnar batch layout, serde and SnapshotTable view-cache tests: the
// invariants the vectorized engine leans on (MaterializeRow rebuilds the
// exact source object, incremental view patching equals a full rebuild,
// writes invalidate only the views they can change) plus the encoding
// round-trip the durable log's columnar delta records use.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kv/columnar.h"
#include "kv/object.h"
#include "kv/partitioner.h"
#include "kv/snapshot_table.h"
#include "kv/value.h"
#include "storage/serde.h"

namespace sq {
namespace {

using kv::Column;
using kv::ColumnBatch;
using kv::Object;
using kv::Partitioner;
using kv::SnapshotTable;
using kv::Value;
using kv::ValueType;

// ---------------------------------------------------------------------------
// ColumnBatch layout

TEST(ColumnBatchTest, MaterializeRowRebuildsExactObjects) {
  ColumnBatch batch;
  const Object a{{"n", Value(int64_t{1})}, {"zone", Value("east")}};
  const Object b{{"n", Value(int64_t{2})}, {"ratio", Value(0.5)}};
  const Object c{{"flag", Value(true)}, {"note", Value::Null()}};
  batch.AppendRow(Value(int64_t{10}), 1, a);
  batch.AppendRow(Value(int64_t{11}), 1, b);
  batch.AppendRow(Value(int64_t{12}), 2, c);

  ASSERT_EQ(batch.row_count(), 3u);
  // Dictionary is the union of field names, sorted ascending.
  EXPECT_EQ(batch.names(),
            (std::vector<std::string>{"flag", "n", "note", "ratio", "zone"}));
  // Round trip is exact, including field order and absent fields.
  EXPECT_EQ(batch.MaterializeRow(0), a);
  EXPECT_EQ(batch.MaterializeRow(1), b);
  EXPECT_EQ(batch.MaterializeRow(2), c);

  EXPECT_EQ(batch.keys()[1], Value(int64_t{11}));
  EXPECT_EQ(batch.ssids()[2], 2);
  EXPECT_FALSE(batch.has_tombstones());
}

TEST(ColumnBatchTest, TypedColumnsStayContiguousAndAbsenceReadsNull) {
  ColumnBatch batch;
  batch.AppendRow(Value(int64_t{1}), 1, Object{{"n", Value(int64_t{7})}});
  batch.AppendRow(Value(int64_t{2}), 1, Object{{"zone", Value("west")}});
  batch.AppendRow(Value(int64_t{3}), 1, Object{{"n", Value(int64_t{9})}});

  const int n_idx = batch.FindColumn("n");
  ASSERT_GE(n_idx, 0);
  const Column& n = batch.column(static_cast<size_t>(n_idx));
  EXPECT_EQ(n.type(), ValueType::kInt64);
  EXPECT_FALSE(n.mixed());
  ASSERT_EQ(n.ints().size(), 3u);
  EXPECT_EQ(n.ints()[0], 7);
  EXPECT_EQ(n.ints()[2], 9);
  EXPECT_TRUE(n.present(0));
  EXPECT_FALSE(n.present(1));  // row 2 has no "n"
  EXPECT_EQ(n.At(1), Value::Null());
  EXPECT_EQ(batch.FindColumn("missing"), -1);
}

TEST(ColumnBatchTest, TypeConflictAndExplicitNullDemoteToMixed) {
  ColumnBatch batch;
  batch.AppendRow(Value(int64_t{1}), 1, Object{{"v", Value(int64_t{1})}});
  batch.AppendRow(Value(int64_t{2}), 1, Object{{"v", Value("two")}});
  const Column& v = batch.column(static_cast<size_t>(batch.FindColumn("v")));
  EXPECT_TRUE(v.mixed());
  EXPECT_EQ(v.At(0), Value(int64_t{1}));
  EXPECT_EQ(v.At(1), Value("two"));

  // An explicit NULL field cannot live next to the presence bitmap in a
  // typed array, so it also demotes.
  ColumnBatch nulls;
  nulls.AppendRow(Value(int64_t{1}), 1, Object{{"v", Value(int64_t{1})}});
  nulls.AppendRow(Value(int64_t{2}), 1, Object{{"v", Value::Null()}});
  const Column& nv = nulls.column(static_cast<size_t>(nulls.FindColumn("v")));
  EXPECT_TRUE(nv.mixed());
  EXPECT_TRUE(nv.present(1));
  EXPECT_EQ(nv.At(1), Value::Null());
  EXPECT_EQ(nulls.MaterializeRow(1), (Object{{"v", Value::Null()}}));
}

TEST(ColumnBatchTest, TombstoneRowsCarryNoFields) {
  ColumnBatch batch;
  batch.AppendRow(Value(int64_t{1}), 1, Object{{"n", Value(int64_t{5})}});
  batch.AppendTombstone(Value(int64_t{2}), 2);
  EXPECT_TRUE(batch.has_tombstones());
  EXPECT_FALSE(batch.tombstone(0));
  EXPECT_TRUE(batch.tombstone(1));
  EXPECT_EQ(batch.MaterializeRow(1), Object());
}

TEST(ColumnBatchTest, AppendRowFromCopiesCellsColumnToColumn) {
  ColumnBatch src;
  src.AppendRow(Value(int64_t{1}), 4,
                Object{{"n", Value(int64_t{3})}, {"zone", Value("east")}});
  src.AppendTombstone(Value(int64_t{2}), 5);

  ColumnBatch dst;
  dst.AppendRowFrom(src, 0);
  dst.AppendRowFrom(src, 1);
  ASSERT_EQ(dst.row_count(), 2u);
  EXPECT_EQ(dst.MaterializeRow(0), src.MaterializeRow(0));
  EXPECT_EQ(dst.ssids()[0], 4);
  EXPECT_TRUE(dst.tombstone(1));
}

// ---------------------------------------------------------------------------
// Columnar record encoding (what the snapshot log persists)

ColumnBatch RoundTrip(const ColumnBatch& batch) {
  std::string buf;
  storage::PutColumnBatch(&buf, batch);
  storage::Reader reader(buf);
  ColumnBatch out;
  EXPECT_TRUE(storage::ReadColumnBatch(&reader, &out));
  return out;
}

TEST(ColumnarSerdeTest, RoundTripPreservesRowsOrderAndTombstones) {
  ColumnBatch batch;
  batch.AppendRow(Value(int64_t{1}), 7,
                  Object{{"d", Value(2.25)},
                         {"n", Value(int64_t{-4})},
                         {"s", Value("zone-3")},
                         {"t", Value(true)}});
  batch.AppendRow(Value("str-key"), 7, Object{{"n", Value(int64_t{8})}});
  batch.AppendTombstone(Value(int64_t{9}), 8);
  batch.AppendRow(Value(int64_t{2}), 8, Object{{"x", Value::Null()}});

  const ColumnBatch out = RoundTrip(batch);
  ASSERT_EQ(out.row_count(), batch.row_count());
  EXPECT_EQ(out.names(), batch.names());
  for (size_t r = 0; r < batch.row_count(); ++r) {
    EXPECT_EQ(out.keys()[r], batch.keys()[r]) << "row " << r;
    EXPECT_EQ(out.ssids()[r], batch.ssids()[r]) << "row " << r;
    EXPECT_EQ(out.tombstone(r), batch.tombstone(r)) << "row " << r;
    EXPECT_EQ(out.MaterializeRow(r), batch.MaterializeRow(r)) << "row " << r;
  }
}

TEST(ColumnarSerdeTest, RoundTripKeepsTypedRepresentation) {
  ColumnBatch batch;
  for (int64_t i = 0; i < 10; ++i) {
    batch.AppendRow(Value(i), 1, Object{{"n", Value(i * 11)}});
  }
  const ColumnBatch out = RoundTrip(batch);
  const Column& n = out.column(static_cast<size_t>(out.FindColumn("n")));
  EXPECT_EQ(n.type(), ValueType::kInt64);
  EXPECT_FALSE(n.mixed());
  EXPECT_EQ(n.ints()[9], 99);
}

TEST(ColumnarSerdeTest, EmptyBatchRoundTrips) {
  const ColumnBatch out = RoundTrip(ColumnBatch());
  EXPECT_EQ(out.row_count(), 0u);
  EXPECT_EQ(out.column_count(), 0u);
}

TEST(ColumnarSerdeTest, TruncatedOrCorruptInputIsRejected) {
  ColumnBatch batch;
  batch.AppendRow(Value(int64_t{1}), 1,
                  Object{{"n", Value(int64_t{5})}, {"zone", Value("east")}});
  std::string buf;
  storage::PutColumnBatch(&buf, batch);

  // Every strict prefix must fail cleanly, never read out of bounds.
  for (size_t len = 0; len < buf.size(); ++len) {
    storage::Reader reader(std::string_view(buf.data(), len));
    ColumnBatch out;
    EXPECT_FALSE(storage::ReadColumnBatch(&reader, &out)) << "prefix " << len;
  }
  // Unknown encoding version.
  std::string bad = buf;
  bad[0] = static_cast<char>(0x7F);
  storage::Reader reader(bad);
  ColumnBatch out;
  EXPECT_FALSE(storage::ReadColumnBatch(&reader, &out));
}

// ---------------------------------------------------------------------------
// SnapshotTable columnar views

Object Row(int64_t n) { return Object{{"n", Value(n)}}; }

// All rows of every partition's columnar view at `ssid`, flattened in
// partition order as (key, entry ssid, object).
struct ViewRow {
  Value key;
  int64_t ssid;
  Object value;
  bool operator==(const ViewRow& o) const {
    return key == o.key && ssid == o.ssid && value == o.value;
  }
};

std::vector<ViewRow> ColumnarRows(const SnapshotTable& table, int64_t ssid) {
  std::vector<ViewRow> rows;
  for (int32_t p = 0; p < table.partition_count(); ++p) {
    auto view = table.ColumnarPartitionAt(p, ssid);
    if (view == nullptr) continue;
    for (size_t r = 0; r < view->row_count(); ++r) {
      rows.push_back(
          {view->keys()[r], view->ssids()[r], view->MaterializeRow(r)});
    }
  }
  return rows;
}

std::vector<ViewRow> ScanRows(const SnapshotTable& table, int64_t ssid) {
  std::vector<ViewRow> rows;
  for (int32_t p = 0; p < table.partition_count(); ++p) {
    table.ScanPartitionAt(p, ssid,
                          [&](const Value& key, int64_t s, const Object& v) {
                            rows.push_back({key, s, v});
                          });
  }
  return rows;
}

TEST(SnapshotTableColumnarTest, ViewMatchesRowScanOrderAndContent) {
  Partitioner part(4);
  SnapshotTable table("snapshot_t", &part);
  for (int64_t k = 0; k < 50; ++k) {
    table.Write(1, Value(k), Row(k * 10));
  }
  // Incremental second checkpoint: updates, an insert and a delete.
  table.Write(2, Value(int64_t{3}), Row(31));
  table.Write(2, Value(int64_t{100}), Row(1000));
  table.WriteTombstone(2, Value(int64_t{7}));

  for (int64_t ssid : {int64_t{1}, int64_t{2}}) {
    const auto columnar = ColumnarRows(table, ssid);
    const auto scanned = ScanRows(table, ssid);
    ASSERT_EQ(columnar.size(), scanned.size()) << "ssid " << ssid;
    for (size_t i = 0; i < scanned.size(); ++i) {
      EXPECT_EQ(columnar[i], scanned[i]) << "ssid " << ssid << " row " << i;
    }
  }
}

TEST(SnapshotTableColumnarTest, IncrementalPatchEqualsFullRebuild) {
  Partitioner part(2);
  SnapshotTable incremental("snapshot_t", &part);
  SnapshotTable fresh("snapshot_t", &part);
  auto write_both = [&](int64_t ssid, int64_t key, int64_t n) {
    incremental.Write(ssid, Value(key), Row(n));
    fresh.Write(ssid, Value(key), Row(n));
  };
  for (int64_t k = 0; k < 20; ++k) write_both(1, k, k);
  // Build and cache the view at 1 so the view at 2 is produced by patching.
  ASSERT_FALSE(ColumnarRows(incremental, 1).empty());

  for (int64_t k = 0; k < 20; k += 3) write_both(2, k, k + 100);
  incremental.WriteTombstone(2, Value(int64_t{5}));
  fresh.WriteTombstone(2, Value(int64_t{5}));

  // `incremental` patches its cached ssid-1 view; `fresh` builds from
  // scratch. Same rows, same order, same values.
  EXPECT_EQ(ColumnarRows(incremental, 2), ColumnarRows(fresh, 2));
}

TEST(SnapshotTableColumnarTest, ViewsAreCachedAndInvalidatedByNewerWrites) {
  Partitioner part(1);
  SnapshotTable table("snapshot_t", &part);
  table.Write(1, Value(int64_t{1}), Row(10));

  auto v1 = table.ColumnarPartitionAt(0, 1);
  ASSERT_NE(v1, nullptr);
  // Second request serves the cached batch.
  EXPECT_EQ(table.ColumnarPartitionAt(0, 1).get(), v1.get());

  // A write at ssid 2 cannot change the view at 1: still cached.
  table.Write(2, Value(int64_t{2}), Row(20));
  EXPECT_EQ(table.ColumnarPartitionAt(0, 1).get(), v1.get());

  // A write *at* ssid 1 changes it: the stale view is dropped and the new
  // one has the extra row. The old shared_ptr stays valid (immutable batch).
  table.Write(1, Value(int64_t{3}), Row(30));
  auto v1b = table.ColumnarPartitionAt(0, 1);
  ASSERT_NE(v1b, nullptr);
  EXPECT_NE(v1b.get(), v1.get());
  EXPECT_EQ(v1.get()->row_count(), 1u);
  EXPECT_EQ(v1b->row_count(), 2u);

  // Compaction keeps cached views at the floor and newer (still valid) but
  // drops older ones, whose bases shifted.
  auto v2 = table.ColumnarPartitionAt(0, 2);
  table.Compact(2);
  EXPECT_EQ(table.ColumnarPartitionAt(0, 2).get(), v2.get());
  EXPECT_NE(table.ColumnarPartitionAt(0, 1).get(), v1b.get());
  EXPECT_EQ(ColumnarRows(table, 2), ScanRows(table, 2));
}

TEST(SnapshotTableColumnarTest, MissingVersionYieldsEmptyOrNullView) {
  Partitioner part(1);
  SnapshotTable table("snapshot_t", &part);
  auto empty = table.ColumnarPartitionAt(0, 5);
  if (empty != nullptr) {
    EXPECT_EQ(empty->row_count(), 0u);
  }
  table.Write(7, Value(int64_t{1}), Row(1));
  // A version before the first write sees nothing.
  auto before = table.ColumnarPartitionAt(0, 6);
  if (before != nullptr) {
    EXPECT_EQ(before->row_count(), 0u);
  }
  auto at = table.ColumnarPartitionAt(0, 7);
  ASSERT_NE(at, nullptr);
  EXPECT_EQ(at->row_count(), 1u);
}

}  // namespace
}  // namespace sq
