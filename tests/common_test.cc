#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/queue.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace sq {
namespace {

TEST(StatusTest, OkIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "not found: missing table");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::Internal("boom").WithContext("while snapshotting");
  EXPECT_EQ(s.message(), "while snapshotting: boom");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("non-positive");
  return v;
}

Result<int> Doubled(int v) {
  SQ_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubled(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.ValueOr(7), 7);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.ValueAtPercentile(50), 0);
}

TEST(HistogramTest, ExactForSmallValues) {
  Histogram h;
  for (int i = 0; i < 64; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 64);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 63);
  EXPECT_EQ(h.ValueAtPercentile(0), 0);
  EXPECT_EQ(h.ValueAtPercentile(100), 63);
  EXPECT_EQ(h.ValueAtPercentile(50), 31);
}

TEST(HistogramTest, PercentilesWithinRelativeError) {
  Histogram h;
  Rng rng(7);
  std::vector<int64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(50'000'000)) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0, 99.9, 99.99}) {
    const int64_t exact =
        values[static_cast<size_t>(p / 100.0 * values.size()) - 1];
    const int64_t approx = h.ValueAtPercentile(p);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.05 * static_cast<double>(exact))
        << "p" << p;
  }
}

// Regression: ValueAtPercentile used to return the *lower* bound of the
// matched bucket, systematically under-reporting tail percentiles by up to
// one bucket width (~3%). It must report the highest equivalent value,
// clamped to the recorded max.
TEST(HistogramTest, PercentileReportsHighestEquivalentValue) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(100000);
  // One distinct value: every percentile is exactly that value. The old
  // lower-bound code returned 98304 here.
  EXPECT_EQ(h.ValueAtPercentile(50), 100000);
  EXPECT_EQ(h.ValueAtPercentile(99), 100000);
  EXPECT_EQ(h.ValueAtPercentile(99.99), 100000);
}

TEST(HistogramTest, PercentileMatchesSortedReferenceWithinOneBucket) {
  Histogram h;
  Rng rng(11);
  std::vector<int64_t> values;
  for (int i = 0; i < 200000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(80'000'000)) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9, 99.99}) {
    const int64_t exact =
        values[static_cast<size_t>(p / 100.0 * values.size()) - 1];
    const int64_t approx = h.ValueAtPercentile(p);
    // One log-linear bucket spans at most value/32; the reported value must
    // sit within one bucket width of the exact order statistic...
    const int64_t bucket_width = exact / 32 + 1;
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(bucket_width))
        << "p" << p;
    // ...and, with highest-equivalent semantics, never *below* the bucket
    // holding it (the old bias was a full bucket width low).
    EXPECT_GE(approx, exact - bucket_width / 2) << "p" << p;
  }
}

TEST(HistogramTest, MergeIntoEmptyAdoptsMinMax) {
  Histogram a;
  Histogram b;
  b.Record(500);
  b.Record(700);
  a.Merge(b);
  // An empty destination must adopt the source's min/max instead of keeping
  // its zero-initialized min (which would fabricate a min of 0).
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 500);
  EXPECT_EQ(a.max(), 700);
  EXPECT_EQ(a.ValueAtPercentile(0), 500);
  // Merging an empty histogram must not disturb the destination.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 500);
  EXPECT_EQ(a.max(), 700);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000);
  b.Record(2000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 2000);
}

TEST(HistogramTest, ConcurrentRecordsAreAllCounted) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(HistogramTest, MergeStateEqualsDirectMerge) {
  // Raw bucket state is how histograms cross the wire between nodes;
  // rebuilding from a snapshot must be indistinguishable from a direct
  // merge of the live histograms.
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 100; ++i) a.Record(i * 10);
  for (int i = 1; i <= 50; ++i) b.Record(i * 1000);

  Histogram via_state;
  via_state.MergeState(a.Snapshot());
  via_state.MergeState(b.Snapshot());
  Histogram direct;
  direct.Merge(a);
  direct.Merge(b);

  const Histogram::Summary s1 = via_state.Summarize();
  const Histogram::Summary s2 = direct.Summarize();
  EXPECT_EQ(s1.count, s2.count);
  EXPECT_EQ(s1.count, 150);
  EXPECT_EQ(s1.p0, s2.p0);
  EXPECT_EQ(s1.p50, s2.p50);
  EXPECT_EQ(s1.p99, s2.p99);
  EXPECT_EQ(s1.max, s2.max);
  EXPECT_EQ(s1.max, 50000);
  EXPECT_EQ(s1.mean, s2.mean);
}

TEST(MetricsRegistryTest, RenderOpenMetricsExposition) {
  MetricsRegistry registry;
  registry.GetCounter("net.server.bytes_in")->Increment(7);
  registry.GetGauge("dataflow.queue_depth")->Set(3);
  registry.GetHistogram("rpc.nanos")->Record(1000);
  const std::string text = registry.RenderOpenMetrics();

  // Dotted names become sq_-prefixed underscore names; counters carry
  // _total, histograms render as summaries with quantile labels.
  EXPECT_NE(text.find("# TYPE sq_net_server_bytes_in counter\n"
                      "sq_net_server_bytes_in_total 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE sq_dataflow_queue_depth gauge\n"
                      "sq_dataflow_queue_depth 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sq_rpc_nanos summary\n"), std::string::npos);
  EXPECT_NE(text.find("sq_rpc_nanos{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("sq_rpc_nanos_count 1\n"), std::string::npos);
  // The exposition terminator comes last, exactly once.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(3);
  ZipfGenerator zipf(1000, 1.0);
  int64_t rank0 = 0;
  int64_t tail = 0;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = zipf.Next(&rng);
    ASSERT_LT(v, 1000u);
    if (v == 0) ++rank0;
    if (v >= 500) ++tail;
  }
  EXPECT_GT(rank0, 10000);  // ~13% expected at s=1, n=1000
  EXPECT_LT(tail, 10000);
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  Rng rng(5);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 600);
  }
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BlockingQueueTest, TryPushRespectsCapacity) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
}

TEST(BlockingQueueTest, CloseUnblocksAndDrains) {
  BlockingQueue<int> q(8);
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);  // drains remaining
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, ProducerConsumerUnderContention) {
  BlockingQueue<int> q(16);
  constexpr int kItems = 50000;
  int64_t sum = 0;
  std::thread consumer([&q, &sum] {
    while (auto v = q.Pop()) sum += *v;
  });
  std::thread producer([&q] {
    for (int i = 1; i <= kItems; ++i) q.Push(i);
    q.Close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum, static_cast<int64_t>(kItems) * (kItems + 1) / 2);
}

TEST(BlockingQueueTest, PopWithTimeoutTimesOutOnEmptyOpenQueue) {
  BlockingQueue<int> q(4);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopWithTimeout(50).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            45);
  // Timing out does not close the queue.
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.Push(1));
  EXPECT_EQ(q.PopWithTimeout(1000).value(), 1);
}

TEST(BlockingQueueTest, PopWithTimeoutReturnsItemDeliveredWhileWaiting) {
  BlockingQueue<int> q(4);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push(42);
  });
  // Far longer than the delivery delay: must return the item, not wait out
  // the full timeout.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.PopWithTimeout(10000).value(), 42);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  producer.join();
}

TEST(BlockingQueueTest, PopWithTimeoutUnblocksPromptlyOnClose) {
  BlockingQueue<int> q(4);
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Close();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopWithTimeout(10000).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Closing must wake the waiter immediately — distinguishable from a
  // timeout, which would have kept it blocked for the full 10s.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  closer.join();
}

TEST(BlockingQueueTest, PopWithTimeoutDrainsClosedQueueBeforeNullopt) {
  BlockingQueue<int> q(4);
  EXPECT_TRUE(q.Push(7));
  q.Close();
  EXPECT_EQ(q.PopWithTimeout(1000).value(), 7);
  EXPECT_FALSE(q.PopWithTimeout(1000).has_value());
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamesUnify) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("a.count");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(registry.GetCounter("a.count"), c);  // same metric, same pointer
  EXPECT_EQ(c->Value(), 5);
  registry.GetGauge("b.depth")->Set(17);
  registry.GetHistogram("c.nanos")->Record(1000);
  const std::vector<MetricSample> samples = registry.Collect();
  ASSERT_EQ(samples.size(), 3u);  // sorted by name
  EXPECT_EQ(samples[0].name, "a.count");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].value, 5);
  EXPECT_EQ(samples[1].name, "b.depth");
  EXPECT_EQ(samples[1].value, 17);
  EXPECT_EQ(samples[2].name, "c.nanos");
  EXPECT_EQ(samples[2].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[2].value, 1);  // histogram `value` = sample count
  EXPECT_EQ(samples[2].summary.count, 1);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* c = registry.GetCounter("hot.counter");
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("hot.counter")->Value(),
            kThreads * kPerThread);
}

TEST(ClockTest, SystemClockAdvances) {
  Clock* clock = SystemClock::Default();
  const int64_t a = clock->NowNanos();
  clock->SleepForNanos(1'000'000);
  EXPECT_GE(clock->NowNanos() - a, 900'000);
}

TEST(ClockTest, VirtualClockIsManual) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100);
  clock.SleepForNanos(50);  // advances instead of blocking
  EXPECT_EQ(clock.NowNanos(), 150);
  clock.SetNanos(1000);
  EXPECT_EQ(clock.NowNanos(), 1000);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.ParallelFor(1000, 8, [&visits](int32_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, SequentialWhenOneWorkerRequested) {
  ThreadPool pool(4);
  const auto main_thread = std::this_thread::get_id();
  std::vector<int32_t> order;
  pool.ParallelFor(16, 1, [&](int32_t i) {
    EXPECT_EQ(std::this_thread::get_id(), main_thread);
    order.push_back(i);
  });
  for (int32_t i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 6; ++t) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(50, 4, [&total](int32_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 6 * 20 * 50);
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 4, [&called](int32_t) { called = true; });
  pool.ParallelFor(-3, 4, [&called](int32_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(HashTest, StableAndSpread) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashInt64(1), HashInt64(2));
  // Sequential ids should not collide modulo small partition counts.
  std::vector<int> buckets(16, 0);
  for (int64_t i = 0; i < 1600; ++i) ++buckets[HashInt64(i) % 16];
  for (int b : buckets) EXPECT_GT(b, 50);
}

}  // namespace
}  // namespace sq
