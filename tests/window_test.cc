#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "dataflow/execution.h"
#include "dataflow/job_graph.h"
#include "dataflow/operators.h"
#include "dataflow/window.h"
#include "kv/grid.h"
#include "query/query_service.h"
#include "state/snapshot_registry.h"
#include "state/squery_state_store.h"

namespace sq::dataflow {
namespace {

using kv::Object;
using kv::Value;

// Source: value = offset, event time = offset * 100us, keyed by offset % 2.
OperatorFactory TimedSource(int64_t n, double rate = 0.0) {
  GeneratorSource::Options options;
  options.total_records = n;
  options.target_rate = rate;
  return MakeGeneratorSourceFactory(
      options, [](int64_t offset, OperatorContext* ctx) {
        Object payload;
        payload.Set("eventTime", Value(offset * 100));
        payload.Set("value", Value(offset));
        return Record::Data(Value(offset % 2), std::move(payload),
                            ctx->NowNanos());
      });
}

struct WindowResult {
  int64_t count = 0;
  double sum = 0.0;
  int64_t min = 0;
  int64_t max = 0;
};

std::map<std::pair<int64_t, int64_t>, WindowResult> CollectWindows(
    const std::vector<Record>& records) {
  std::map<std::pair<int64_t, int64_t>, WindowResult> out;
  for (const Record& r : records) {
    WindowResult& w = out[{r.key.AsInt64(),
                           r.payload.Get("windowStart").AsInt64()}];
    w.count = r.payload.Get("count").AsInt64();
    w.sum = r.payload.Get("sum").AsDouble();
    w.min = r.payload.Get("min").AsInt64();
    w.max = r.payload.Get("max").AsInt64();
  }
  return out;
}

TEST(WindowTest, TumblingWindowsAggregateCorrectly) {
  constexpr int64_t kRecords = 200;  // event times 0..19900us
  JobGraph graph;
  CollectingSink::Collector collector;
  const int32_t src = graph.AddSource("src", 1, TimedSource(kRecords));
  TumblingWindowOperator::Options options;
  options.window_size_micros = 1000;  // 10 records per (window, both keys)
  const int32_t window =
      graph.AddOperator("window", 2, MakeTumblingWindowFactory(options));
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, window, EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(window, sink, EdgeKind::kForward).ok());

  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  const auto windows = CollectWindows(collector.Snapshot());
  // 20 windows (event times 0..19900us, 1ms windows) × 2 keys.
  ASSERT_EQ(windows.size(), 40u);
  for (const auto& [key_and_start, w] : windows) {
    const auto& [key, start] = key_and_start;
    EXPECT_EQ(w.count, 5) << "key " << key << " window " << start;
    // Offsets in the window: start/100 .. start/100+9, filtered by parity.
    const int64_t first = start / 100 + (start / 100 % 2 == key ? 0 : 1);
    EXPECT_EQ(w.min, first);
    EXPECT_EQ(w.max, first + 8);
    EXPECT_DOUBLE_EQ(w.sum, static_cast<double>(first * 5 + 2 + 4 + 6 + 8));
  }
}

TEST(WindowTest, LateRecordsAreDroppedAfterWatermark) {
  // Custom source emitting out-of-order times with one very late record.
  JobGraph graph;
  CollectingSink::Collector collector;
  GeneratorSource::Options options;
  options.total_records = 4;
  const int32_t src = graph.AddSource(
      "src", 1,
      MakeGeneratorSourceFactory(
          options, [](int64_t offset, OperatorContext* ctx) {
            // times: 100, 5000, 150 (late: window [0,1000) fired), 5100.
            static constexpr int64_t kTimes[] = {100, 5000, 150, 5100};
            Object payload;
            payload.Set("eventTime", Value(kTimes[offset]));
            payload.Set("value", Value(int64_t{1}));
            return Record::Data(Value(int64_t{0}), std::move(payload),
                                ctx->NowNanos());
          }));
  TumblingWindowOperator::Options window_options;
  window_options.window_size_micros = 1000;
  const int32_t window =
      graph.AddOperator("window", 1, MakeTumblingWindowFactory(window_options));
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, window, EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(window, sink, EdgeKind::kForward).ok());
  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  const auto windows = CollectWindows(collector.Snapshot());
  ASSERT_EQ(windows.size(), 2u);  // [0,1000) and [5000,6000)
  EXPECT_EQ(windows.at({0, 0}).count, 1);     // late 150 dropped
  EXPECT_EQ(windows.at({0, 5000}).count, 2);  // 5000 + 5100
}

TEST(WindowTest, AllowedLatenessAcceptsStragglers) {
  JobGraph graph;
  CollectingSink::Collector collector;
  GeneratorSource::Options options;
  options.total_records = 3;
  const int32_t src = graph.AddSource(
      "src", 1,
      MakeGeneratorSourceFactory(
          options, [](int64_t offset, OperatorContext* ctx) {
            static constexpr int64_t kTimes[] = {100, 1500, 200};
            Object payload;
            payload.Set("eventTime", Value(kTimes[offset]));
            payload.Set("value", Value(int64_t{1}));
            return Record::Data(Value(int64_t{0}), std::move(payload),
                                ctx->NowNanos());
          }));
  TumblingWindowOperator::Options window_options;
  window_options.window_size_micros = 1000;
  window_options.allowed_lateness_micros = 1000;  // watermark lags 1ms
  const int32_t window = graph.AddOperator(
      "window", 1, MakeTumblingWindowFactory(window_options));
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, window, EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(window, sink, EdgeKind::kForward).ok());
  JobConfig config;
  config.checkpoint_interval_ms = 0;
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  const auto windows = CollectWindows(collector.Snapshot());
  // With lateness 1ms the watermark never passes window [0,1000) until
  // close, so the straggler at t=200 is included.
  EXPECT_EQ(windows.at({0, 0}).count, 2);
}

// Open windows are ordinary keyed state: queryable via S-QUERY, and they
// survive crash + recovery exactly.
TEST(WindowTest, OpenWindowsAreQueryableAndSurviveRecovery) {
  kv::Grid grid(kv::GridConfig{.node_count = 2, .partition_count = 16,
                               .backup_count = 0});
  state::SnapshotRegistry registry(&grid, {.retained_versions = 2,
                                           .async_prune = false});
  query::QueryService service(&grid, &registry);

  JobGraph graph;
  CollectingSink::Collector collector;
  const int32_t src =
      graph.AddSource("src", 1, TimedSource(400000, /*rate=*/50000.0));
  TumblingWindowOperator::Options window_options;
  window_options.window_size_micros = 100 * 100000;  // far future: stay open
  const int32_t window = graph.AddOperator(
      "window", 2, MakeTumblingWindowFactory(window_options));
  const int32_t sink =
      graph.AddSink("sink", 1, MakeCollectingSinkFactory(&collector));
  ASSERT_TRUE(graph.Connect(src, window, EdgeKind::kKeyed).ok());
  ASSERT_TRUE(graph.Connect(window, sink, EdgeKind::kForward).ok());

  state::SQueryConfig state_config;
  state_config.parallelism = 2;
  JobConfig config;
  config.checkpoint_interval_ms = 25;
  config.partitioner = &grid.partitioner();
  config.listener = &registry;
  config.state_store_factory =
      state::MakeSQueryStateStoreFactory(&grid, state_config);
  auto job = Job::Create(graph, std::move(config));
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Query the *open* windows via SQL while the job runs.
  ASSERT_TRUE(registry.WaitForCommit(1, 2000));
  auto open = service.Execute(
      "SELECT COUNT(*) AS open_windows, SUM(count) AS buffered "
      "FROM snapshot_window");
  ASSERT_TRUE(open.ok()) << open.status();
  EXPECT_GE(open->At(0, "open_windows").AsInt64(), 1);
  EXPECT_GT(open->At(0, "buffered").AsInt64(), 0);

  // Crash + recover mid-window, then let the bounded stream finish: the
  // final per-window aggregates must be exact (no loss, no double count).
  ASSERT_TRUE((*job)->InjectFailureAndRecover().ok());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  const auto windows = CollectWindows(collector.Snapshot());
  int64_t total = 0;
  for (const auto& [key_and_start, w] : windows) total += w.count;
  EXPECT_EQ(total, 400000);
}

}  // namespace
}  // namespace sq::dataflow
