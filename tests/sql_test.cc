#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace sq::sql {
namespace {

using kv::Object;
using kv::Value;

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, 12 FROM t WHERE b >= 1.5 AND c != 'x''y'");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_TRUE(t[2].IsSymbol(","));
  EXPECT_EQ(t[3].int_value, 12);
  EXPECT_TRUE(t[4].IsKeyword("FROM"));
  EXPECT_TRUE(t[6].IsKeyword("WHERE"));
  EXPECT_TRUE(t[8].IsSymbol(">="));
  EXPECT_EQ(t[9].double_value, 1.5);
  EXPECT_TRUE(t[10].IsKeyword("AND"));
  EXPECT_TRUE(t[12].IsSymbol("!="));
  EXPECT_EQ(t[13].text, "x'y");
}

TEST(LexerTest, QuotedIdentifiersAndComments) {
  auto tokens = Tokenize("SELECT x -- trailing comment\nFROM \"snapshot_t\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[3].text, "snapshot_t");
  EXPECT_EQ((*tokens)[3].type, TokenType::kIdentifier);
}

TEST(LexerTest, ErrorsOnUnterminatedLiteral) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
  EXPECT_FALSE(Tokenize("SELECT \"oops").ok());
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

TEST(ParserTest, SimpleProjection) {
  auto stmt = ParseSelect("SELECT count, total FROM average WHERE key=1");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->items.size(), 2u);
  EXPECT_EQ((*stmt)->from.name, "average");
  ASSERT_NE((*stmt)->where, nullptr);
}

TEST(ParserTest, PaperFigure4SnapshotQuery) {
  auto stmt = ParseSelect(
      "SELECT count, total FROM snapshot_average WHERE ssid=9 AND key=2");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->from.name, "snapshot_average");
}

TEST(ParserTest, PaperQuery1Parses) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*), deliveryZone FROM \"snapshot_orderinfo\" JOIN "
      "\"snapshot_orderstate\" USING(partitionKey) WHERE "
      "(orderState='VENDOR_ACCEPTED' AND lateTimestamp<LOCALTIMESTAMP) "
      "GROUP BY deliveryZone;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& s = **stmt;
  EXPECT_EQ(s.items.size(), 2u);
  EXPECT_TRUE(s.items[0].expr->ContainsAggregate());
  EXPECT_EQ(s.from.name, "snapshot_orderinfo");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].table.name, "snapshot_orderstate");
  EXPECT_EQ(s.joins[0].using_column, "partitionKey");
  EXPECT_EQ(s.group_by.size(), 1u);
}

TEST(ParserTest, OrderByLimitDistinct) {
  auto stmt = ParseSelect(
      "SELECT DISTINCT zone FROM t ORDER BY zone DESC, n ASC LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE((*stmt)->distinct);
  ASSERT_EQ((*stmt)->order_by.size(), 2u);
  EXPECT_TRUE((*stmt)->order_by[0].second);
  EXPECT_FALSE((*stmt)->order_by[1].second);
  EXPECT_EQ((*stmt)->limit, 10);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage here").ok());
}

TEST(ParserTest, ExpressionPrecedence) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a=1 OR b=2 AND c=3");
  ASSERT_TRUE(stmt.ok());
  // OR is the root: (a=1) OR ((b=2) AND (c=3)).
  EXPECT_EQ((*stmt)->where->binary_op, BinaryOp::kOr);
  auto arith = ParseSelect("SELECT 1 + 2 * 3 - 4 FROM t");
  ASSERT_TRUE(arith.ok());
  EXPECT_EQ((*arith)->items[0].expr->ToString(), "((1 + (2 * 3)) - 4)");
}

/// Resolver over in-memory tables for executor tests.
class FakeResolver : public TableResolver {
 public:
  void AddRow(const std::string& table, Object row) {
    tables_[table].push_back(std::move(row));
  }

  Result<std::vector<Object>> ScanTable(
      const std::string& table,
      std::optional<int64_t> requested_ssid) override {
    last_ssid_request = requested_ssid;
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("no table " + table);
    return it->second;
  }

  std::optional<int64_t> last_ssid_request;

 private:
  std::map<std::string, std::vector<Object>> tables_;
};

Object Tuple(std::initializer_list<Object::Field> fields) {
  return Object(fields);
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    // Fig. 4's "average" operator state.
    resolver_.AddRow("average", Tuple({{"key", Value(int64_t{1})},
                                       {"count", Value(int64_t{3})},
                                       {"total", Value(int64_t{30})}}));
    resolver_.AddRow("average", Tuple({{"key", Value(int64_t{2})},
                                       {"count", Value(int64_t{2})},
                                       {"total", Value(int64_t{20})}}));
    // Orders: info + state, joined on partitionKey.
    for (int64_t k = 0; k < 6; ++k) {
      resolver_.AddRow(
          "snapshot_orderinfo",
          Tuple({{"partitionKey", Value(k)},
                 {"deliveryZone", Value(k % 2 == 0 ? "north" : "south")},
                 {"vendorCategory", Value(k % 3 == 0 ? "food" : "retail")}}));
      resolver_.AddRow(
          "snapshot_orderstate",
          Tuple({{"partitionKey", Value(k)},
                 {"orderState",
                  Value(k < 4 ? "VENDOR_ACCEPTED" : "DELIVERED")},
                 {"lateTimestamp", Value(int64_t{500})}}));
    }
  }

  ResultSet MustExecute(const std::string& sql) {
    auto result = ExecuteSql(sql, &resolver_, options_);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : ResultSet{};
  }

  FakeResolver resolver_;
  ExecOptions options_{.local_timestamp_micros = 1000};
};

TEST_F(ExecutorTest, PointLookupProjection) {
  ResultSet r =
      MustExecute("SELECT count, total FROM average WHERE key=1");
  ASSERT_EQ(r.RowCount(), 1u);
  EXPECT_EQ(r.At(0, "count").AsInt64(), 3);
  EXPECT_EQ(r.At(0, "total").AsInt64(), 30);
}

TEST_F(ExecutorTest, SelectStarUnionsColumns) {
  ResultSet r = MustExecute("SELECT * FROM average");
  EXPECT_EQ(r.RowCount(), 2u);
  EXPECT_NE(r.ColumnIndex("count"), -1);
  EXPECT_NE(r.ColumnIndex("total"), -1);
  EXPECT_NE(r.ColumnIndex("key"), -1);
}

TEST_F(ExecutorTest, WhereWithAndOrNot) {
  EXPECT_EQ(MustExecute("SELECT key FROM average WHERE count=3 AND total=30")
                .RowCount(),
            1u);
  EXPECT_EQ(MustExecute("SELECT key FROM average WHERE count=3 OR count=2")
                .RowCount(),
            2u);
  EXPECT_EQ(MustExecute("SELECT key FROM average WHERE NOT count=3")
                .RowCount(),
            1u);
  EXPECT_EQ(MustExecute("SELECT key FROM average WHERE count>2").RowCount(),
            1u);
  EXPECT_EQ(MustExecute("SELECT key FROM average WHERE count<=3").RowCount(),
            2u);
}

TEST_F(ExecutorTest, ArithmeticInProjection) {
  ResultSet r =
      MustExecute("SELECT total / count AS avg FROM average WHERE key=1");
  ASSERT_EQ(r.RowCount(), 1u);
  EXPECT_DOUBLE_EQ(r.At(0, "avg").AsDouble(), 10.0);
}

TEST_F(ExecutorTest, JoinUsingMergesRows) {
  ResultSet r = MustExecute(
      "SELECT partitionKey, deliveryZone, orderState FROM "
      "snapshot_orderinfo JOIN snapshot_orderstate USING(partitionKey)");
  EXPECT_EQ(r.RowCount(), 6u);
  EXPECT_NE(r.ColumnIndex("orderState"), -1);
}

TEST_F(ExecutorTest, PaperQuery1ShapeRuns) {
  ResultSet r = MustExecute(
      "SELECT COUNT(*), deliveryZone FROM \"snapshot_orderinfo\" JOIN "
      "\"snapshot_orderstate\" USING(partitionKey) WHERE "
      "(orderState='VENDOR_ACCEPTED' AND lateTimestamp<LOCALTIMESTAMP) "
      "GROUP BY deliveryZone;");
  // Orders 0..3 accepted and late; zones: 0,2 north / 1,3 south.
  ASSERT_EQ(r.RowCount(), 2u);
  std::map<std::string, int64_t> by_zone;
  for (size_t i = 0; i < r.RowCount(); ++i) {
    by_zone[r.At(i, "deliveryZone").ToString()] =
        r.At(i, "COUNT(*)").AsInt64();
  }
  EXPECT_EQ(by_zone["north"], 2);
  EXPECT_EQ(by_zone["south"], 2);
}

TEST_F(ExecutorTest, GroupByWithMultipleAggregates) {
  ResultSet r = MustExecute(
      "SELECT deliveryZone, COUNT(*) AS n, MIN(partitionKey) AS lo, "
      "MAX(partitionKey) AS hi FROM snapshot_orderinfo GROUP BY "
      "deliveryZone ORDER BY deliveryZone");
  ASSERT_EQ(r.RowCount(), 2u);
  EXPECT_EQ(r.At(0, "deliveryZone").ToString(), "north");
  EXPECT_EQ(r.At(0, "n").AsInt64(), 3);
  EXPECT_EQ(r.At(0, "lo").AsInt64(), 0);
  EXPECT_EQ(r.At(0, "hi").AsInt64(), 4);
}

TEST_F(ExecutorTest, GlobalAggregatesWithoutGroupBy) {
  ResultSet r = MustExecute(
      "SELECT COUNT(*) AS n, SUM(total) AS s, AVG(count) AS a FROM average");
  ASSERT_EQ(r.RowCount(), 1u);
  EXPECT_EQ(r.At(0, "n").AsInt64(), 2);
  EXPECT_EQ(r.At(0, "s").AsInt64(), 50);
  EXPECT_DOUBLE_EQ(r.At(0, "a").AsDouble(), 2.5);
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  ResultSet r =
      MustExecute("SELECT COUNT(*) AS n FROM average WHERE key=99");
  ASSERT_EQ(r.RowCount(), 1u);
  EXPECT_EQ(r.At(0, "n").AsInt64(), 0);
}

TEST_F(ExecutorTest, OrderByAndLimit) {
  ResultSet r = MustExecute(
      "SELECT partitionKey FROM snapshot_orderinfo ORDER BY partitionKey "
      "DESC LIMIT 3");
  ASSERT_EQ(r.RowCount(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 5);
  EXPECT_EQ(r.rows[2][0].AsInt64(), 3);
}

TEST_F(ExecutorTest, DistinctDeduplicates) {
  ResultSet r =
      MustExecute("SELECT DISTINCT deliveryZone FROM snapshot_orderinfo");
  EXPECT_EQ(r.RowCount(), 2u);
}

TEST_F(ExecutorTest, SsidEqualityConjunctIsExtracted) {
  MustExecute("SELECT count FROM average WHERE key=1");
  EXPECT_FALSE(resolver_.last_ssid_request.has_value());
  auto result = ExecuteSql("SELECT count FROM average WHERE ssid=9 AND key=2",
                           &resolver_, options_);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(resolver_.last_ssid_request.has_value());
  EXPECT_EQ(*resolver_.last_ssid_request, 9);
}

TEST_F(ExecutorTest, SsidInsideOrIsNotAVersionPin) {
  auto result = ExecuteSql(
      "SELECT count FROM average WHERE ssid=9 OR key=2", &resolver_,
      options_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(resolver_.last_ssid_request.has_value());
}

TEST_F(ExecutorTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(ExecuteSql("SELECT x FROM missing_table", &resolver_,
                          options_)
                   .ok());
  EXPECT_FALSE(
      ExecuteSql("SELECT * FROM average GROUP BY key", &resolver_, options_)
          .ok());
  EXPECT_FALSE(ExecuteSql("SELECT NOSUCHFUNC(x) FROM average", &resolver_,
                          options_)
                   .ok());
}

TEST_F(ExecutorTest, LocalTimestampIsBound) {
  ResultSet r = MustExecute(
      "SELECT key FROM average WHERE LOCALTIMESTAMP > 999");
  EXPECT_EQ(r.RowCount(), 2u);
  ResultSet none = MustExecute(
      "SELECT key FROM average WHERE LOCALTIMESTAMP > 1001");
  EXPECT_EQ(none.RowCount(), 0u);
}

TEST(ResultSetTest, ToStringRendersTable) {
  ResultSet r;
  r.columns = {"zone", "n"};
  r.rows.push_back({Value("north"), Value(int64_t{2})});
  const std::string s = r.ToString();
  EXPECT_NE(s.find("zone"), std::string::npos);
  EXPECT_NE(s.find("north"), std::string::npos);
  EXPECT_NE(s.find("1 row(s)"), std::string::npos);
}

}  // namespace
}  // namespace sq::sql
