// Cross-cutting invariants: the Value total order is a strict weak ordering
// consistent with equality and hashing (required by ORDER BY, group-by and
// hash-join correctness), and SQL ORDER BY/LIMIT agree with a reference
// sort for random inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sql/executor.h"
#include "kv/value.h"

namespace sq {
namespace {

using kv::Object;
using kv::Value;

Value RandomValue(Rng* rng) {
  switch (rng->NextBounded(5)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(rng->NextBool(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng->NextInRange(-50, 50)));
    case 3:
      return Value(rng->NextDouble() * 100.0 - 50.0);
    default:
      return Value("s" + std::to_string(rng->NextBounded(40)));
  }
}

class ValueOrderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueOrderProperty, StrictWeakOrderingAxioms) {
  Rng rng(GetParam());
  std::vector<Value> values;
  for (int i = 0; i < 60; ++i) values.push_back(RandomValue(&rng));

  for (const Value& a : values) {
    EXPECT_FALSE(a < a) << a.ToString();  // irreflexive
    for (const Value& b : values) {
      // Antisymmetry: at most one of a<b, b<a.
      EXPECT_FALSE(a < b && b < a) << a.ToString() << " " << b.ToString();
      // Equality consistency: a==b implies neither a<b nor b<a, and equal
      // hashes (hash-join/group-by requirement).
      if (a == b) {
        EXPECT_FALSE(a < b);
        EXPECT_FALSE(b < a);
        EXPECT_EQ(a.Hash(), b.Hash());
      }
      for (const Value& c : values) {
        if (a < b && b < c) {
          EXPECT_TRUE(a < c) << a.ToString() << " " << b.ToString() << " "
                             << c.ToString();  // transitive
        }
      }
    }
  }
  // std::sort must terminate and produce a sorted sequence.
  std::vector<Value> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_FALSE(sorted[i] < sorted[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValueOrderProperty,
                         ::testing::Values(101, 202, 303));

class SortResolver : public sql::TableResolver {
 public:
  std::vector<Object> rows;
  Result<std::vector<Object>> ScanTable(const std::string&,
                                        std::optional<int64_t>) override {
    return rows;
  }
};

class OrderLimitProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderLimitProperty, MatchesReferenceSort) {
  Rng rng(GetParam());
  SortResolver resolver;
  std::vector<std::pair<int64_t, int64_t>> reference;  // (sort key, id)
  for (int64_t i = 0; i < 300; ++i) {
    const int64_t v = rng.NextInRange(-1000, 1000);
    Object row;
    row.Set("id", Value(i));
    row.Set("v", Value(v));
    resolver.rows.push_back(std::move(row));
    reference.emplace_back(v, i);
  }
  auto result = sql::ExecuteSql(
      "SELECT id, v FROM t ORDER BY v, id LIMIT 25", &resolver,
      sql::ExecOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  std::sort(reference.begin(), reference.end());
  ASSERT_EQ(result->RowCount(), 25u);
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(result->At(i, "v").AsInt64(), reference[i].first) << i;
    EXPECT_EQ(result->At(i, "id").AsInt64(), reference[i].second) << i;
  }
  // DESC is the exact reverse prefix.
  auto desc = sql::ExecuteSql("SELECT id FROM t ORDER BY v DESC, id DESC "
                              "LIMIT 10",
                              &resolver, sql::ExecOptions{});
  ASSERT_TRUE(desc.ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(desc->At(i, "id").AsInt64(),
              reference[reference.size() - 1 - i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrderLimitProperty,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace sq
